"""Chaos harness: seeded fault schedules over real workload executions.

Chen et al.'s cross-industry study (arXiv:1208.4174) shows production
MapReduce clusters run *permanently* in a degraded regime — tasks fail,
nodes die, fetches flake — yet jobs finish with correct output.  The
chaos harness asserts our model has the same property: it runs a real
workload through the :class:`~repro.mapreduce.engine.LocalEngine` twice —
once on a healthy cluster, once through a :class:`FaultyCluster` with a
seeded schedule mixing every fault class (task failures, stragglers, a
node crash, shuffle-fetch failures, replica loss) — and checks that

* the functional output is bit-identical to the fault-free run,
* the simulated duration is no shorter than the fault-free baseline,
* the resilience accounting shows the injected faults were actually hit.

Everything is seeded (``random.Random``), so a chaos run is exactly
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cluster.attempts import JobFailedError, RetryPolicy
from repro.cluster.cluster import make_cluster
from repro.cluster.faults import FaultPlan, FaultyCluster, FaultyTimeline

#: Accounting keys that aggregate by summation (the rest are name tuples).
_SUM_KEYS = (
    "failed_attempts",
    "failed_map_attempts",
    "failed_reduce_attempts",
    "killed_attempts",
    "speculative_attempts",
    "speculative_wins",
    "wasted_seconds",
    "shuffle_fetch_failures",
    "fetch_escalations",
    "maps_reexecuted",
    "re_replicated_bytes",
    "blocks_lost",
    "master_crashes",
    "recovery_downtime_s",
    "maps_recovered",
    "jobs_restarted",
    "jobs_resumed",
    "corrupt_replicas_injected",
    "checksum_failures",
    "bad_blocks_reported",
    "scrubbed_bytes",
    "zombie_attempts_fenced",
    "net_retransmits",
    "net_retransmit_bytes",
)


def chaos_plan(
    seed: int,
    num_maps: int,
    num_reduces: int,
    node_names: list[str],
    map_window_s: float | None = None,
    policy: RetryPolicy | None = None,
) -> FaultPlan:
    """Sample a mixed fault schedule for one job shape.

    Always injects at least one map failure; with seed-dependent
    probability adds a reduce failure, one straggler node, one node crash
    during the map phase (needs *map_window_s*, the fault-free map-phase
    duration, to aim the crash), shuffle-fetch failures (sometimes enough
    to escalate into a map re-run) and the loss of one input replica.
    The mix is bounded so a healthy retry policy always completes the job.
    """
    if num_maps < 1:
        raise ValueError("chaos needs at least one map task")
    if not node_names:
        raise ValueError("chaos needs at least one node")
    rng = random.Random(seed)
    policy = policy or RetryPolicy()

    k = max(1, num_maps // 8)
    map_failures = tuple(sorted(rng.sample(range(num_maps), min(k, num_maps))))

    reduce_failures: tuple[int, ...] = ()
    if num_reduces and rng.random() < 0.7:
        reduce_failures = (rng.randrange(num_reduces),)

    straggler_nodes: tuple[str, ...] = ()
    straggler_factor = 4.0
    if len(node_names) > 1 and rng.random() < 0.6:
        straggler_nodes = (rng.choice(node_names),)
        straggler_factor = rng.uniform(2.0, 5.0)

    node_crashes: tuple[tuple[str, float], ...] = ()
    if map_window_s and len(node_names) > 2 and rng.random() < 0.5:
        victims = [n for n in node_names if n not in straggler_nodes]
        node_crashes = (
            (rng.choice(victims), map_window_s * rng.uniform(0.3, 0.8)),
        )

    shuffle_failures: tuple[tuple[int, int, int], ...] = ()
    if num_reduces and rng.random() < 0.7:
        times = rng.choice([1, 2, policy.max_fetch_retries + 1])
        shuffle_failures = (
            (rng.randrange(num_reduces), rng.randrange(num_maps), times),
        )

    lost_replicas: tuple[tuple[int, str], ...] = ()
    if rng.random() < 0.5:
        lost_replicas = ((rng.randrange(num_maps), rng.choice(node_names)),)

    return FaultPlan(
        map_failures=map_failures,
        reduce_failures=reduce_failures,
        straggler_nodes=straggler_nodes,
        straggler_factor=straggler_factor,
        node_crashes=node_crashes,
        shuffle_failures=shuffle_failures,
        lost_replicas=lost_replicas,
        seed=seed,
        policy=policy,
    )


def aggregate_accounting(timelines) -> dict[str, object]:
    """Sum resilience counters across a workload's (faulty) job timelines."""
    totals: dict[str, object] = {key: 0 for key in _SUM_KEYS}
    crashed: set[str] = set()
    blacklisted: set[str] = set()
    partitioned: set[str] = set()
    graylisted: set[str] = set()
    for timeline in timelines:
        if not isinstance(timeline, FaultyTimeline):
            continue
        accounting = timeline.accounting()
        for key in _SUM_KEYS:
            totals[key] += accounting[key]
        crashed.update(accounting["nodes_crashed"])
        blacklisted.update(accounting["blacklisted_nodes"])
        partitioned.update(accounting["nodes_partitioned"])
        graylisted.update(accounting["graylisted_nodes"])
    totals["nodes_crashed"] = tuple(sorted(crashed))
    totals["blacklisted_nodes"] = tuple(sorted(blacklisted))
    totals["nodes_partitioned"] = tuple(sorted(partitioned))
    totals["graylisted_nodes"] = tuple(sorted(graylisted))
    return totals


@dataclass(frozen=True)
class ChaosResult:
    """Outcome of one chaos run compared with its fault-free twin."""

    workload: str
    seed: int
    plan: FaultPlan
    baseline_duration_s: float
    chaotic_duration_s: float
    identical_output: bool
    accounting: dict[str, object]

    @property
    def slowdown(self) -> float:
        if self.baseline_duration_s <= 0:
            return 1.0
        return self.chaotic_duration_s / self.baseline_duration_s


def run_chaos(
    workload_name: str,
    seed: int,
    scale: float = 0.3,
    num_slaves: int = 4,
    block_size: int = 64 * 1024,
    policy: RetryPolicy | None = None,
) -> ChaosResult:
    """Run *workload_name* healthy and under a seeded chaos schedule.

    The fault-free run both provides the comparison baseline and sizes the
    chaos plan (task counts, map-phase window for aiming the node crash).
    """
    from repro.workloads import workload as load_workload

    baseline_cluster = make_cluster(num_slaves, block_size=block_size)
    baseline = load_workload(workload_name).run(
        scale=scale, cluster=baseline_cluster
    )
    if not baseline.timelines:
        raise ValueError("chaos needs a clustered workload run")
    first = baseline.timelines[0]
    plan = chaos_plan(
        seed,
        num_maps=first.map_tasks,
        num_reduces=first.reduce_tasks,
        node_names=[node.name for node in baseline_cluster.slaves],
        map_window_s=first.map_phase_end_s - first.start_s,
        policy=policy,
    )

    chaos_cluster = FaultyCluster(
        make_cluster(num_slaves, block_size=block_size), plan
    )
    chaotic = load_workload(workload_name).run(scale=scale, cluster=chaos_cluster)

    return ChaosResult(
        workload=workload_name,
        seed=seed,
        plan=plan,
        baseline_duration_s=baseline.duration_s,
        chaotic_duration_s=chaotic.duration_s,
        identical_output=repr(baseline.output) == repr(chaotic.output),
        accounting=aggregate_accounting(chaotic.timelines),
    )


def integrity_chaos_plan(
    seed: int,
    num_maps: int,
    num_reduces: int,
    node_names: list[str],
    map_window_s: float | None = None,
    corruption_rate: float = 0.25,
    transfer_corruption_rate: float = 0.05,
    link_loss_rate: float = 0.02,
    policy: RetryPolicy | None = None,
) -> FaultPlan:
    """Sample a gray-failure schedule: bit rot, flaky links, one partition.

    Unlike :func:`chaos_plan` (fail-stop faults), everything here fails
    *silently*: replicas rot at rest, transfers flip bits in flight,
    links drop segments, and one tasktracker is partitioned during the
    map phase for longer than the heartbeat timeout — so it is declared
    lost, its tasks are rescheduled, and its zombie attempts must be
    fenced when it rejoins.  A post-job scrub is always on, so every
    injected corruption is detected by the end of the run.  The mix is
    bounded (a block's last good replica is never rotted) so a
    checksum-verifying scheduler always completes with correct output.
    """
    if num_maps < 1:
        raise ValueError("chaos needs at least one map task")
    if not node_names:
        raise ValueError("chaos needs at least one node")
    rng = random.Random(f"integrity:{seed}")
    policy = policy or RetryPolicy()

    partitions: tuple[tuple[str, float, float], ...] = ()
    if map_window_s and len(node_names) > 2:
        victim = rng.choice(node_names)
        p_start = map_window_s * rng.uniform(0.2, 0.6)
        # Longer than the heartbeat timeout, so the jobtracker notices
        # and the rejoining tracker produces fenceable zombies.
        duration = policy.heartbeat_timeout_s * rng.uniform(2.0, 4.0)
        partitions = ((victim, p_start, duration),)

    return FaultPlan(
        corruption_rate=corruption_rate,
        transfer_corruption_rate=transfer_corruption_rate,
        link_loss_rate=link_loss_rate,
        partitions=partitions,
        scrub=True,
        seed=seed,
        policy=policy,
    )


@dataclass(frozen=True)
class IntegrityChaosResult:
    """Outcome of one integrity chaos run vs its fault-free twin."""

    workload: str
    seed: int
    plan: FaultPlan
    baseline_duration_s: float
    chaotic_duration_s: float
    identical_output: bool
    corrupt_injected: int
    checksum_failures: int
    bad_blocks_reported: int
    undetected_corrupt_replicas: int
    zombie_attempts_fenced: int
    net_retransmits: int
    scrubbed_bytes: int
    accounting: dict[str, object]

    @property
    def all_corruption_detected(self) -> bool:
        """Every injected at-rest corruption was caught and repaired."""
        return (
            self.undetected_corrupt_replicas == 0
            and self.checksum_failures >= self.corrupt_injected
            and self.bad_blocks_reported >= self.corrupt_injected
        )


def run_integrity_chaos(
    workload_name: str,
    seed: int,
    scale: float = 0.3,
    num_slaves: int = 4,
    block_size: int = 64 * 1024,
    policy: RetryPolicy | None = None,
) -> IntegrityChaosResult:
    """Run *workload_name* healthy and under a gray-failure schedule.

    The fault-free run provides the output baseline and sizes the plan
    (map-phase window for aiming the partition).  The caller asserts the
    chaotic output stays bit-identical and no corruption goes undetected
    (``undetected_corrupt_replicas == 0`` after the final scrub).
    """
    from repro.workloads import workload as load_workload

    baseline_cluster = make_cluster(num_slaves, block_size=block_size)
    baseline = load_workload(workload_name).run(
        scale=scale, cluster=baseline_cluster
    )
    if not baseline.timelines:
        raise ValueError("chaos needs a clustered workload run")
    first = baseline.timelines[0]
    plan = integrity_chaos_plan(
        seed,
        num_maps=first.map_tasks,
        num_reduces=first.reduce_tasks,
        node_names=[node.name for node in baseline_cluster.slaves],
        map_window_s=first.map_phase_end_s - first.start_s,
        policy=policy,
    )

    chaos_cluster = FaultyCluster(
        make_cluster(num_slaves, block_size=block_size), plan
    )
    chaotic = load_workload(workload_name).run(scale=scale, cluster=chaos_cluster)
    accounting = aggregate_accounting(chaotic.timelines)

    return IntegrityChaosResult(
        workload=workload_name,
        seed=seed,
        plan=plan,
        baseline_duration_s=baseline.duration_s,
        chaotic_duration_s=chaotic.duration_s,
        identical_output=repr(baseline.output) == repr(chaotic.output),
        corrupt_injected=int(accounting["corrupt_replicas_injected"]),
        checksum_failures=int(accounting["checksum_failures"]),
        bad_blocks_reported=int(accounting["bad_blocks_reported"]),
        undetected_corrupt_replicas=chaos_cluster.hdfs.corrupt_replica_count,
        zombie_attempts_fenced=int(accounting["zombie_attempts_fenced"]),
        net_retransmits=int(accounting["net_retransmits"]),
        scrubbed_bytes=int(accounting["scrubbed_bytes"]),
        accounting=accounting,
    )


@dataclass(frozen=True)
class MasterCrashResult:
    """Outcome of one master-crash chaos run: both recovery modes vs healthy.

    Each recovery mode runs the same workload with the JobTracker/NameNode
    crashing at the same mid-job instant; what differs is whether the
    restarted master replays the job-history journal (``resume``) or
    re-submits the in-flight job from scratch (``restart``).
    """

    workload: str
    seed: int
    crash_time_s: float
    baseline_duration_s: float
    restart_duration_s: float
    resume_duration_s: float
    restart_identical: bool
    resume_identical: bool
    restart_accounting: dict[str, object]
    resume_accounting: dict[str, object]

    @property
    def resume_beats_restart(self) -> bool:
        return self.resume_duration_s <= self.restart_duration_s

    @property
    def recovery_savings_s(self) -> float:
        """Wall-clock the job-history journal saved over a cold restart."""
        return self.restart_duration_s - self.resume_duration_s


def run_master_crash_chaos(
    workload_name: str,
    seed: int,
    scale: float = 0.3,
    num_slaves: int = 4,
    block_size: int = 64 * 1024,
    downtime_s: float = 0.75,
    policy: RetryPolicy | None = None,
) -> MasterCrashResult:
    """Kill the master mid-workload and compare both recovery modes.

    The fault-free run sizes the schedule: the crash is aimed (seeded)
    inside the workload's span so it lands mid-job.  Both recovery modes
    then run the identical schedule; the harness caller asserts outputs
    stay bit-identical and ``resume`` never loses to ``restart``.
    """
    from repro.workloads import workload as load_workload

    baseline_cluster = make_cluster(num_slaves, block_size=block_size)
    baseline = load_workload(workload_name).run(
        scale=scale, cluster=baseline_cluster
    )
    if not baseline.timelines:
        raise ValueError("chaos needs a clustered workload run")
    span = baseline.timelines[-1].end_s - baseline.timelines[0].start_s
    rng = random.Random(seed)
    crash_time = span * rng.uniform(0.2, 0.8)

    runs: dict[str, object] = {}
    for mode in ("restart", "resume"):
        plan = FaultPlan(
            master_crash_time=crash_time,
            master_recovery=mode,
            master_downtime_s=downtime_s,
            seed=seed,
            policy=policy or RetryPolicy(),
        )
        cluster = FaultyCluster(
            make_cluster(num_slaves, block_size=block_size), plan
        )
        runs[mode] = load_workload(workload_name).run(
            scale=scale, cluster=cluster
        )

    return MasterCrashResult(
        workload=workload_name,
        seed=seed,
        crash_time_s=crash_time,
        baseline_duration_s=baseline.duration_s,
        restart_duration_s=runs["restart"].duration_s,
        resume_duration_s=runs["resume"].duration_s,
        restart_identical=repr(baseline.output) == repr(runs["restart"].output),
        resume_identical=repr(baseline.output) == repr(runs["resume"].output),
        restart_accounting=aggregate_accounting(runs["restart"].timelines),
        resume_accounting=aggregate_accounting(runs["resume"].timelines),
    )


@dataclass(frozen=True)
class FailSlowChaosResult:
    """Outcome of one fail-slow chaos run: a limping node, three mixes.

    The same job trace runs fault-free, with one limping node and
    speculation off, and with the same limping node and speculation on.
    A fail-slow node completes everything it is given — slowly — so the
    damage shows up in tail latency, not in failures; the mitigation
    claim is that straggler detection plus speculative backups claws
    most of that tail back while the commit fence keeps exactly one
    attempt's output per task.
    """

    workload: str
    seed: int
    scheduler: str
    limping_node: str
    limp_factor: float
    baseline_p99_s: float
    limping_p99_s: float
    speculative_p99_s: float
    identical_outputs: bool
    single_job_identical: bool
    single_job_slowdown: float
    stragglers_detected: tuple[str, ...]
    speculative_attempts: int
    speculative_wins: int
    speculative_losers_fenced: int
    zombies_fenced: int
    fence_fenced: int

    @property
    def limping_slowdown(self) -> float:
        """How much the limping node inflated the mix p99 (speculation off)."""
        if self.baseline_p99_s <= 0:
            return 1.0
        return self.limping_p99_s / self.baseline_p99_s

    @property
    def recovered_fraction(self) -> float:
        """Share of the fail-slow p99 inflation speculation clawed back."""
        inflation = self.limping_p99_s - self.baseline_p99_s
        if inflation <= 0:
            return 1.0
        return (self.limping_p99_s - self.speculative_p99_s) / inflation

    @property
    def every_loser_fenced(self) -> bool:
        """Each speculative race fenced exactly one losing attempt."""
        return (
            self.speculative_losers_fenced == self.speculative_attempts
            and self.fence_fenced
            == self.zombies_fenced + self.speculative_losers_fenced
        )


def run_fail_slow_chaos(
    workload_name: str = "Sort",
    seed: int = 0,
    scheduler: str = "fifo",
    jobs: int = 5,
    scale: float = 0.12,
    num_slaves: int = 3,
    map_slots: int = 4,
    reduce_slots: int = 2,
    block_size: int = 64 * 1024,
    limp_factor: float = 3.0,
) -> FailSlowChaosResult:
    """Run a job trace against a limping node, with and without speculation.

    Builds a trace of *jobs* identical jobs with seeded staggered
    arrivals, limps the last slave's CPU/disk/NIC by *limp_factor*, and
    plays the trace three ways (fault-free, limping with speculation
    off, limping with speculation on) under the named scheduler.  Also
    runs the workload solo through a limping :class:`FaultyCluster` to
    check functional output is untouched by fail-slow hardware.
    """
    from repro.cluster.scheduler import FairScheduler, FifoScheduler
    from repro.cluster.tenancy import TraceJob, WorkloadTrace, run_mix
    from repro.workloads import workload as load_workload

    if jobs < 1:
        raise ValueError("chaos needs at least one trace job")
    makers = {"fifo": FifoScheduler, "fair": FairScheduler}
    if scheduler not in makers:
        raise ValueError("scheduler must be fifo or fair")
    victim = f"slave{num_slaves}"  # slaves are named slave1..slaveN
    limp = ((victim, limp_factor),)

    solo_plain = load_workload(workload_name).run(
        scale=scale, cluster=make_cluster(num_slaves, block_size=block_size)
    )
    solo_limping = load_workload(workload_name).run(
        scale=scale,
        cluster=FaultyCluster(
            make_cluster(num_slaves, block_size=block_size),
            FaultPlan(limping_nodes=limp, seed=seed),
        ),
    )

    # Space arrivals just past the healthy solo duration: a fault-free
    # cluster keeps up with the offered load, a limping one falls
    # steadily behind — the fail-slow failure mode is a latency tail
    # that compounds, and mitigation has idle healthy slots to race on.
    rng = random.Random(f"failslow-chaos:{seed}")
    arrival = 0.0
    trace_jobs = []
    for index in range(jobs):
        trace_jobs.append(
            TraceJob(
                index,
                workload_name,
                scale,
                arrival,
                f"user{index % 3}",
                "batch",
                "small",
            )
        )
        arrival += solo_plain.duration_s * rng.uniform(1.05, 1.25)
    trace = WorkloadTrace(tuple(trace_jobs), seed=seed, arrival_rate_per_s=0.0)
    shape = dict(
        num_slaves=num_slaves,
        map_slots=map_slots,
        reduce_slots=reduce_slots,
        block_size=block_size,
    )

    def p99(mix) -> float:
        from repro.cluster.serve import percentile

        return percentile([r.turnaround_s for r in mix.reports], 99.0)

    baseline = run_mix(trace, makers[scheduler](), **shape)
    limping = run_mix(
        trace,
        makers[scheduler](),
        plan=FaultPlan(
            speculative_execution=False, limping_nodes=limp, seed=seed
        ),
        **shape,
    )
    speculative = run_mix(
        trace,
        makers[scheduler](),
        plan=FaultPlan(limping_nodes=limp, seed=seed),
        **shape,
    )
    acct = speculative.outcome.fault_accounting

    return FailSlowChaosResult(
        workload=workload_name,
        seed=seed,
        scheduler=scheduler,
        limping_node=victim,
        limp_factor=limp_factor,
        baseline_p99_s=p99(baseline),
        limping_p99_s=p99(limping),
        speculative_p99_s=p99(speculative),
        identical_outputs=(
            repr(limping.outputs) == repr(baseline.outputs)
            and repr(speculative.outputs) == repr(baseline.outputs)
        ),
        single_job_identical=repr(solo_plain.output) == repr(solo_limping.output),
        single_job_slowdown=(
            solo_limping.duration_s / solo_plain.duration_s
            if solo_plain.duration_s > 0
            else 1.0
        ),
        stragglers_detected=acct.stragglers_detected,
        speculative_attempts=acct.speculative_attempts,
        speculative_wins=acct.speculative_wins,
        speculative_losers_fenced=acct.speculative_losers_fenced,
        zombies_fenced=acct.zombies_fenced,
        fence_fenced=speculative.outcome.fenced_attempts,
    )


@dataclass(frozen=True)
class OverloadChaosResult:
    """Outcome of one overload chaos run: protected vs unprotected frontend.

    The same saturating open-loop arrival stream plays twice: once
    through a frontend with admission control, shedding and deadlines,
    once through an anything-goes frontend.  Graceful degradation means
    the protected frontend holds its admitted-traffic p99 near the
    deadline while the unprotected queue — and its p99 — grows without
    bound.
    """

    seed: int
    rate_per_s: float
    num_requests: int
    servers: int
    pattern: str
    deadline_s: float
    protected: object  # ServeReport
    unprotected: object  # ServeReport

    @property
    def p99_gap_s(self) -> float:
        return self.unprotected.p99_s - self.protected.p99_s

    @property
    def ordering_holds(self) -> bool:
        """The degradation ordering the controls are supposed to buy."""
        return self.protected.p99_s < self.unprotected.p99_s


def run_overload_chaos(
    seed: int = 0,
    rate_per_s: float = 40.0,
    num_requests: int = 600,
    servers: int = 4,
    pattern: str = "bursty",
    deadline_s: float = 2.0,
) -> OverloadChaosResult:
    """Saturate a service frontend with and without degradation controls.

    The defaults offer ~2.4x the bank's capacity (mean demand 0.24 s,
    4 servers ≈ 16.7 req/s) in bursts, so the unprotected queue grows
    essentially without bound while the protected frontend sheds its
    way to a bounded admitted-traffic p99.
    """
    from repro.cluster.serve import ArrivalProcess, ServePolicy, run_service

    process = ArrivalProcess(rate_per_s=rate_per_s, pattern=pattern)
    protected_policy = ServePolicy(
        deadline_s=deadline_s,
        max_queue_depth=32,
        shed_rate=0.5,
        shed_threshold=8,
        retry_budget=1,
    )
    protected = run_service(
        process=process,
        num_requests=num_requests,
        servers=servers,
        policy=protected_policy,
        seed=seed,
    )
    unprotected = run_service(
        process=process,
        num_requests=num_requests,
        servers=servers,
        policy=ServePolicy.unprotected(deadline_s=deadline_s),
        seed=seed,
    )
    return OverloadChaosResult(
        seed=seed,
        rate_per_s=rate_per_s,
        num_requests=num_requests,
        servers=servers,
        pattern=pattern,
        deadline_s=deadline_s,
        protected=protected,
        unprotected=unprotected,
    )


@dataclass(frozen=True)
class WorkflowChaosResult:
    """Outcome of one workflow chaos run: one DAG, four fault regimes.

    The same DAG runs fault-free, then under a mid-workflow node crash,
    a network partition, and total replica corruption of one completed
    stage's output.  A workflow's functional output is the payload each
    sink commits, so "survived" means every faulted run completed with
    sink outputs bit-identical to the baseline — corruption via lineage
    recomputation of the minimal upstream subgraph rather than a
    :class:`DataLossError`.  A fifth run exhausts one stage's retry
    budget and checks failure propagation: exactly the downstream cone
    is cancelled, every independent stage still completes.
    """

    dag: str
    seed: int
    scheduler: str
    stages: int
    baseline_end_s: float
    crash_node: str
    crash_at_s: float
    partition_node: str
    destroyed_stage: str
    crash_identical: bool
    partition_identical: bool
    corruption_identical: bool
    lineage_recomputes: int
    destroyed_outputs: int
    failed_stage: str
    stage_retries: int
    cancelled_stages: tuple[str, ...]
    surviving_stages: tuple[str, ...]
    cone_exact: bool
    checkpoints: int

    @property
    def identical_outputs(self) -> bool:
        """Every fault regime reproduced the baseline sink outputs."""
        return (
            self.crash_identical
            and self.partition_identical
            and self.corruption_identical
        )

    @property
    def survived(self) -> bool:
        """The workflow-robustness contract held under every regime."""
        return (
            self.identical_outputs
            and self.lineage_recomputes >= 1
            and self.destroyed_outputs >= 1
            and self.stage_retries >= 1
            and self.cone_exact
        )


def run_workflow_chaos(
    dag: str = "hive-chain",
    seed: int = 0,
    scheduler: str = "fifo",
    scale: float = 0.05,
    num_slaves: int = 4,
) -> WorkflowChaosResult:
    """Run one DAG through the workflow fault regimes, seeded.

    Builds the named DAG (see ``WORKFLOW_DAGS``), runs it fault-free
    for the baseline, then replays it under a seeded node crash, a
    seeded partition, replica corruption of a seeded non-sink stage's
    output, and an injected permanent stage failure.  Each regime gets
    a fresh cluster, so runs are independent and exactly reproducible.
    """
    from repro.cluster.workflow import (
        WorkflowFaultPlan,
        WorkflowRunner,
        build_workflow,
    )

    workflow = build_workflow(dag, scale=scale, num_slaves=num_slaves)
    rng = random.Random(f"workflow-chaos:{dag}:{scheduler}:{seed}")

    def fresh():
        return make_cluster(num_slaves=num_slaves, block_size=256 * 1024)

    def run(plan=None):
        return WorkflowRunner(fresh(), scheduler=scheduler, plan=plan).run(
            workflow
        )

    baseline = run()
    if baseline.status != "completed":
        raise RuntimeError(f"baseline workflow {dag!r} did not complete")

    # Mid-workflow fail-stop crash of a seeded datanode.
    crash_node = f"slave{rng.randrange(1, num_slaves + 1)}"
    crash_at = baseline.end_s * rng.uniform(0.2, 0.6)
    crashed = run(WorkflowFaultPlan(node_crashes=((crash_node, crash_at),), seed=seed))

    # Network partition of a seeded node across the middle of the run.
    partition_node = f"slave{rng.randrange(1, num_slaves + 1)}"
    start = baseline.end_s * rng.uniform(0.1, 0.4)
    duration = max(1.0, baseline.end_s * rng.uniform(0.2, 0.5))
    partitioned = run(
        WorkflowFaultPlan(
            partitions=((partition_node, start, duration),), seed=seed
        )
    )

    # Total replica loss of one completed, still-needed stage output.
    candidates = [
        name for name in workflow.order if workflow.consumers_of(name)
    ]
    destroyed_stage = rng.choice(candidates)
    corrupted = run(
        WorkflowFaultPlan(destroy_outputs=(destroyed_stage,), seed=seed)
    )

    # Permanent failure: exhaust the retry budget of a seeded stage and
    # check exactly its downstream cone is cancelled.
    failed_stage = rng.choice(list(workflow.order))
    budget = workflow.stage(failed_stage).policy.max_retries
    cascaded = run(
        WorkflowFaultPlan(fail_stages=((failed_stage, budget + 1),), seed=seed)
    )
    cone = set(workflow.downstream_cone(failed_stage))
    cancelled = tuple(
        r.stage for r in cascaded.reports if r.status == "cancelled"
    )
    survivors = tuple(
        r.stage for r in cascaded.reports if r.status == "completed"
    )
    cone_exact = set(cancelled) == cone and set(survivors) == (
        set(workflow.order) - cone - {failed_stage}
    )

    def identical(result) -> bool:
        return (
            result.status == "completed"
            and repr(result.outputs) == repr(baseline.outputs)
        )

    return WorkflowChaosResult(
        dag=dag,
        seed=seed,
        scheduler=scheduler,
        stages=len(workflow),
        baseline_end_s=baseline.end_s,
        crash_node=crash_node,
        crash_at_s=crash_at,
        partition_node=partition_node,
        destroyed_stage=destroyed_stage,
        crash_identical=identical(crashed),
        partition_identical=identical(partitioned),
        corruption_identical=identical(corrupted),
        lineage_recomputes=corrupted.accounting.lineage_recomputes,
        destroyed_outputs=corrupted.accounting.destroyed_outputs,
        failed_stage=failed_stage,
        stage_retries=cascaded.accounting.stage_retries,
        cancelled_stages=cancelled,
        surviving_stages=survivors,
        cone_exact=cone_exact,
        checkpoints=baseline.accounting.checkpoints,
    )


# -- failure domains: rack-level chaos -----------------------------------------


def _blocks_lost_to(hdfs, failed_nodes) -> int:
    """Blocks in *hdfs* with no replica outside *failed_nodes*.

    Counts both blocks already emptied by processed ``fail_node`` calls
    and blocks whose every remaining replica sits inside the failed
    domain (a run that aborts on :class:`DataLossError` stops processing
    crashes, so some doomed replicas are still on the books).
    """
    failed = frozenset(failed_nodes)
    return sum(
        1
        for name in hdfs.files
        for block in hdfs.files[name].blocks
        if all(replica in failed for replica in block.replicas)
    )


@dataclass(frozen=True)
class RackChaosResult:
    """Outcome of losing one whole rack, rack-aware vs flat placement.

    The headline failure-domain contract: with rack-aware placement a
    full single-rack outage (:attr:`survived`) costs zero data and the
    output stays bit-identical to the fault-free run, while *flat*
    placement on the same cluster shape and seed demonstrably loses
    blocks (:attr:`flat_demonstrably_loses`) — every replica of some
    blocks lived inside the failed domain.
    """

    workload: str
    seed: int
    #: ``"power"`` (all nodes crash) or ``"tor"`` (timed rack partition).
    mode: str
    racks: int
    victim_rack: str
    outage_at_s: float
    plan: FaultPlan
    flat_plan: FaultPlan
    baseline_duration_s: float
    chaotic_duration_s: float
    identical_output: bool
    #: unrecoverable blocks after the rack-aware run (the contract: 0).
    rack_blocks_lost: int
    #: the namenode's rack-diversity gauge after the rack-aware run.
    rack_under_diverse_blocks: int
    #: whether the flat-placement twin even completed its jobs.
    flat_completed: bool
    #: unrecoverable blocks after the flat-placement twin.
    flat_blocks_lost: int
    accounting: dict[str, object]

    @property
    def survived(self) -> bool:
        """Rack-aware placement rode out the rack loss with zero data loss."""
        return self.identical_output and self.rack_blocks_lost == 0

    @property
    def flat_demonstrably_loses(self) -> bool:
        """The flat twin lost blocks (or aborted on unreadable data)."""
        return self.flat_blocks_lost >= 1 or not self.flat_completed

    @property
    def slowdown(self) -> float:
        if self.baseline_duration_s <= 0:
            return 1.0
        return self.chaotic_duration_s / self.baseline_duration_s


def run_rack_chaos(
    workload_name: str,
    seed: int,
    scale: float = 0.3,
    num_slaves: int = 6,
    racks: int = 2,
    block_size: int = 8 * 1024,
    mode: str = "power",
    policy: RetryPolicy | None = None,
) -> RackChaosResult:
    """Kill one whole rack mid-run; compare rack-aware vs flat placement.

    Three executions, all seeded:

    1. a fault-free run on a rack-aware cluster — the output baseline,
       and the sizing for the outage time (aimed inside the map phase);
    2. the same rack-aware cluster under the rack outage (``mode="power"``
       crashes every member at once; ``mode="tor"`` partitions the rack
       for a window longer than the heartbeat timeout);
    3. a *flat* (single-rack, topology-less) twin whose members of the
       same victim set all crash at the same instant — flat round-robin
       placement puts consecutive replicas on consecutive nodes, so some
       blocks live entirely inside the victim set and are lost.
    """
    from repro.workloads import workload as load_workload

    if mode not in ("power", "tor"):
        raise ValueError("mode must be 'power' or 'tor'")
    if racks < 2:
        raise ValueError("rack chaos needs at least two racks")
    policy = policy or RetryPolicy()

    baseline_cluster = make_cluster(num_slaves, block_size=block_size, racks=racks)
    baseline = load_workload(workload_name).run(
        scale=scale, cluster=baseline_cluster
    )
    if not baseline.timelines:
        raise ValueError("rack chaos needs a clustered workload run")
    first = baseline.timelines[0]
    map_window_s = first.map_phase_end_s - first.start_s

    rng = random.Random(f"rack-chaos:{mode}:{seed}")
    victim_rack = rng.choice(list(baseline_cluster.topology.racks))
    members = baseline_cluster.topology.nodes_in(victim_rack)
    outage_at = map_window_s * rng.uniform(0.3, 0.8)

    if mode == "power":
        plan = FaultPlan(
            rack_outages=((victim_rack, outage_at),), seed=seed, policy=policy
        )
    else:
        duration = (
            map_window_s * rng.uniform(0.8, 1.2) + 2 * policy.heartbeat_timeout_s
        )
        plan = FaultPlan(
            tor_failures=((victim_rack, outage_at, duration),),
            seed=seed,
            policy=policy,
        )

    chaos_cluster = FaultyCluster(
        make_cluster(num_slaves, block_size=block_size, racks=racks), plan
    )
    chaotic = load_workload(workload_name).run(scale=scale, cluster=chaos_cluster)

    # The flat twin: same cluster shape, no topology, and the same
    # physical event expressed as correlated per-node crashes.
    flat_plan = FaultPlan(
        node_crashes=tuple((name, outage_at) for name in members),
        seed=seed,
        policy=policy,
    )
    flat_cluster = FaultyCluster(
        make_cluster(num_slaves, block_size=block_size), flat_plan
    )
    flat_completed = True
    try:
        load_workload(workload_name).run(scale=scale, cluster=flat_cluster)
    except JobFailedError:  # includes DataLossError
        flat_completed = False

    return RackChaosResult(
        workload=workload_name,
        seed=seed,
        mode=mode,
        racks=racks,
        victim_rack=victim_rack,
        outage_at_s=outage_at,
        plan=plan,
        flat_plan=flat_plan,
        baseline_duration_s=baseline.duration_s,
        chaotic_duration_s=chaotic.duration_s,
        identical_output=repr(baseline.output) == repr(chaotic.output),
        rack_blocks_lost=_blocks_lost_to(
            chaos_cluster.hdfs, members if mode == "power" else ()
        ),
        rack_under_diverse_blocks=chaos_cluster.hdfs.rack_under_diverse_blocks,
        flat_completed=flat_completed,
        flat_blocks_lost=_blocks_lost_to(flat_cluster.hdfs, members),
        accounting=aggregate_accounting(chaotic.timelines),
    )
