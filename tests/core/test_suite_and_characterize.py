"""Tests for the DCBench suite and the characterization arc."""

import pytest

from repro.core import DCBench, FIGURE_ORDER, Metrics, characterize
from repro.core.characterize import characterize_suite
from repro.core.metrics import STALL_CATEGORIES, average_metrics
from repro.core.suite import DATA_ANALYSIS_NAMES
from repro.uarch.config import scaled_machine


@pytest.fixture(scope="module")
def suite():
    return DCBench.default()


@pytest.fixture(scope="module")
def sample_chars(suite):
    """A small, fast characterization sample spanning all groups."""
    names = ["WordCount", "Sort", "Data Serving", "SPECINT", "HPCC-HPL", "HPCC-STREAM"]
    return [
        characterize(suite.entry(name), instructions=40_000, scale=8) for name in names
    ]


class TestSuite:
    def test_suite_has_26_entries(self, suite):
        # 11 data-analysis + 5 CloudSuite + SPECFP/SPECINT/SPECWeb + 7 HPCC.
        assert len(suite) == 26
        assert suite.names() == FIGURE_ORDER

    def test_naive_bayes_leads_the_figures(self, suite):
        # "we report the Naive Bayes on the leftmost side" (§IV-A).
        assert suite.names()[0] == "Naive Bayes"

    def test_groups(self, suite):
        assert len(suite.data_analysis()) == 11
        assert len(suite.services()) == 5
        assert len(suite.group("hpc")) == 7
        assert len(suite.group("desktop")) == 2
        assert len(suite.group("cloud")) == 1  # Software Testing

    def test_data_analysis_names_match_table_one_set(self, suite):
        assert set(DATA_ANALYSIS_NAMES) == {e.name for e in suite.data_analysis()}

    def test_entry_lookup(self, suite):
        entry = suite.entry("K-means")
        assert entry.group == "data-analysis"
        with pytest.raises(KeyError):
            suite.entry("Quake")

    def test_data_analysis_only_suite(self):
        sub = DCBench.data_analysis_only()
        assert len(sub) == 11
        assert all(e.is_data_analysis for e in sub)

    def test_entries_produce_trace_specs(self, suite):
        for entry in suite:
            spec = entry.trace_spec(1000)
            assert spec.instructions == 1000


class TestCharacterize:
    def test_returns_metrics_and_counters(self, sample_chars):
        c = sample_chars[0]
        assert c.name == "WordCount"
        assert c.group == "data-analysis"
        assert c.metrics.ipc > 0
        assert c.reading["instructions"] > 0

    def test_deterministic(self, suite):
        a = characterize(suite.entry("Grep"), instructions=20_000)
        b = characterize(suite.entry("Grep"), instructions=20_000)
        assert a.metrics == b.metrics

    def test_explicit_machine_override(self, suite):
        machine = scaled_machine(16)
        c = characterize(suite.entry("Grep"), instructions=20_000, scale=16, machine=machine)
        assert c.result.machine == machine.name

    def test_stall_breakdown_normalised(self, sample_chars):
        for c in sample_chars:
            total = sum(c.metrics.stall_breakdown.values())
            assert total == pytest.approx(1.0)

    def test_sort_kernel_fraction_measured(self, sample_chars):
        sort = next(c for c in sample_chars if c.name == "Sort")
        assert sort.metrics.kernel_instruction_fraction == pytest.approx(0.24, abs=0.04)

    def test_service_vs_da_shape(self, sample_chars):
        wc = next(c for c in sample_chars if c.name == "WordCount")
        ds = next(c for c in sample_chars if c.name == "Data Serving")
        assert ds.metrics.kernel_instruction_fraction > wc.metrics.kernel_instruction_fraction
        assert ds.metrics.l1i_mpki > wc.metrics.l1i_mpki
        assert ds.metrics.ipc < wc.metrics.ipc
        assert ds.metrics.frontend_stall_share() > wc.metrics.frontend_stall_share()

    def test_hpl_fastest_of_sample(self, sample_chars):
        hpl = next(c for c in sample_chars if c.name == "HPCC-HPL")
        assert hpl.metrics.ipc == max(c.metrics.ipc for c in sample_chars)

    def test_characterize_suite_subset(self):
        sub = DCBench.data_analysis_only()
        chars = characterize_suite(sub, instructions=10_000)
        assert [c.name for c in chars] == [e.name for e in sub]


class TestMetrics:
    def test_average_metrics(self):
        a = Metrics(1.0, 0.1, 10, 0.1, 5, 0.8, 0.2, 0.02, {c: 1 / 6 for c in STALL_CATEGORIES})
        b = Metrics(3.0, 0.3, 30, 0.3, 15, 0.6, 0.4, 0.04, {c: 1 / 6 for c in STALL_CATEGORIES})
        avg = average_metrics([a, b])
        assert avg.ipc == 2.0
        assert avg.l2_mpki == 10
        assert avg.stall_breakdown["fetch"] == pytest.approx(1 / 6)

    def test_average_rejects_empty(self):
        with pytest.raises(ValueError):
            average_metrics([])

    def test_value_lookup(self):
        m = Metrics(1.0, 0.1, 10, 0.1, 5, 0.8, 0.2, 0.02, {c: 0.0 for c in STALL_CATEGORIES})
        assert m.value("ipc") == 1.0
        assert m.value("fetch") == 0.0

    def test_front_back_shares(self):
        m = Metrics(
            1.0, 0.1, 10, 0.1, 5, 0.8, 0.2, 0.02,
            {"fetch": 0.2, "rat": 0.3, "load": 0.0, "rs_full": 0.3, "store": 0.0, "rob_full": 0.2},
        )
        assert m.frontend_stall_share() == pytest.approx(0.5)
        assert m.backend_stall_share() == pytest.approx(0.5)
