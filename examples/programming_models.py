#!/usr/bin/env python3
"""MPI vs MapReduce: the programming-model effect (paper §V).

"We also notice the significant effects of different programming models,
e.g., MPI vs. MapReduce, on the application behaviors" — DCBench ships
both implementations.  This example runs the same three algorithms over
the same data on the same 4-node substrate under both models and compares
the execution profiles: MapReduce pays per-iteration HDFS materialisation
and shuffle spills; MPI keeps state in memory and exchanges deltas.

Run:  python examples/programming_models.py
"""

from repro.cluster import make_cluster
from repro.mpi import MpiRuntime, mpi_kmeans, mpi_pagerank, mpi_wordcount
from repro.workloads import datagen, workload

SCALE = 0.4


def compare(name, mr_run, mpi_run, outputs_match):
    mr_bytes = mr_run.counters.shuffle_bytes + mr_run.counters.reduce_output_bytes
    print(f"{name:<11s}{mr_run.duration_s:>12.3f}s{mpi_run.elapsed_s:>10.3f}s"
          f"{mr_run.duration_s / max(mpi_run.elapsed_s, 1e-9):>9.1f}x"
          f"{mr_bytes:>14,d}{mpi_run.stats_bytes:>13,d}"
          f"{'yes' if outputs_match else 'NO':>8s}")


def main() -> None:
    print(f"{'workload':<11s}{'MapReduce':>13s}{'MPI':>11s}{'ratio':>10s}"
          f"{'MR bytes':>14s}{'MPI bytes':>13s}{'same?':>8s}")
    print("-" * 80)

    # WordCount (single pass)
    docs = datagen.generate_documents(int(1200 * SCALE))
    mr = workload("WordCount").run(scale=SCALE, cluster=make_cluster(4, block_size=16 * 1024))
    mpi = mpi_wordcount(MpiRuntime(8, nodes=make_cluster(4).slaves), docs)
    compare("WordCount", mr, mpi, mpi.output == mr.output)

    # K-means (iterative)
    points, _ = datagen.generate_cluster_points(int(4000 * SCALE), num_clusters=5)
    mr = workload("K-means").run(scale=SCALE, cluster=make_cluster(4, block_size=16 * 1024))
    mpi = mpi_kmeans(MpiRuntime(8, nodes=make_cluster(4).slaves), points, k=5)
    close = all(
        min(sum((a - b) ** 2 for a, b in zip(c, d)) for d in mr.output) < 1e-6
        for c in mpi.output
    )
    compare("K-means", mr, mpi, close)

    # PageRank (iterative, communication-heavy)
    graph = datagen.generate_web_graph(int(2000 * SCALE))
    mr = workload("PageRank").run(scale=SCALE, cluster=make_cluster(4, block_size=16 * 1024))
    mpi = mpi_pagerank(MpiRuntime(8, nodes=make_cluster(4).slaves), graph, iterations=8)
    top_mr = sorted(mr.output, key=mr.output.get, reverse=True)[:10]
    top_mpi = sorted(mpi.output, key=mpi.output.get, reverse=True)[:10]
    compare("PageRank", mr, mpi, len(set(top_mr) & set(top_mpi)) >= 8)

    print("\nreading: identical algorithms and answers; the MapReduce runs pay"
          "\nHDFS materialisation + disk shuffle per job (worst for the"
          "\niterative workloads), while MPI exchanges in-memory deltas.")


if __name__ == "__main__":
    main()
