"""Hive session: tables + query execution over the MapReduce engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import HadoopCluster
from repro.hive.parser import (
    CreateTableAs,
    DropTable,
    parse_query,
    parse_statement,
    split_statements,
)
from repro.hive.planner import QueryPlan, plan_query
from repro.hive.schema import Column, Table
from repro.mapreduce.counters import JobCounters
from repro.mapreduce.engine import JobResult, LocalEngine


@dataclass
class QueryExecution:
    """Result of one SQL statement."""

    sql: str
    columns: list[str]
    rows: list[tuple]
    plan: QueryPlan
    job_results: list[JobResult] = field(default_factory=list)

    @property
    def counters(self) -> JobCounters:
        """Counters merged across all stages."""
        merged = JobCounters()
        for result in self.job_results:
            merged.merge(result.counters)
        return merged

    def total_duration_s(self) -> float:
        return sum(
            r.timeline.duration_s for r in self.job_results if r.timeline is not None
        )


class HiveSession:
    """A warehouse session: CREATE-like table registration plus SELECTs.

    With a :class:`~repro.cluster.cluster.HadoopCluster` attached, every
    compiled stage is also scheduled on the cluster, so Hive queries
    produce job timelines exactly like hand-written MapReduce jobs.
    """

    def __init__(self, engine: LocalEngine | None = None, cluster: HadoopCluster | None = None):
        self.engine = engine or LocalEngine()
        self.cluster = cluster
        self.tables: dict[str, Table] = {}

    # -- DDL-ish -------------------------------------------------------------

    def create_table(self, name: str, columns: list[Column | tuple[str, str]]) -> Table:
        if name in self.tables:
            raise ValueError(f"table {name!r} already exists")
        cols = [c if isinstance(c, Column) else Column(*c) for c in columns]
        table = Table(name, cols)
        self.tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        self.tables.pop(name, None)

    def load_rows(self, name: str, rows) -> None:
        self.table(name).extend(rows)

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no such table: {name!r}") from None

    # -- queries -------------------------------------------------------------

    def explain(self, sql: str) -> str:
        query = parse_query(sql)
        return plan_query(query, self.tables).describe()

    def execute_statement(self, sql: str) -> QueryExecution | None:
        """Run one statement of any kind.

        SELECTs return a :class:`QueryExecution`; ``CREATE TABLE … AS``
        materialises the result as a new table (column types inferred
        from the first row) and returns the underlying execution; ``DROP
        TABLE`` returns None.
        """
        statement = parse_statement(sql)
        if isinstance(statement, DropTable):
            self.drop_table(statement.table)
            return None
        if isinstance(statement, CreateTableAs):
            execution = self._run_query(statement.query, sql)
            columns = [
                Column(_safe_column_name(name), _infer_type(execution.rows, index))
                for index, name in enumerate(execution.columns)
            ]
            table = self.create_table(statement.table, columns)
            table.extend(execution.rows)
            return execution
        return self._run_query(statement, sql)

    def execute_script(self, script: str) -> list[QueryExecution]:
        """Run a ;-separated script; returns the SELECT/CTAS executions."""
        executions = []
        for sql in split_statements(script):
            execution = self.execute_statement(sql)
            if execution is not None:
                executions.append(execution)
        return executions

    def execute(self, sql: str) -> QueryExecution:
        """Parse, plan and run one SELECT; return rows and job results."""
        query = parse_query(sql)
        return self._run_query(query, sql)

    def _run_query(self, query, sql: str) -> QueryExecution:
        plan = plan_query(query, self.tables)
        rows: list[tuple] | None = None
        job_results: list[JobResult] = []
        for stage in plan.stages:
            records = stage.input_builder(rows)
            result = self.engine.execute(stage.job, records, cluster=self.cluster)
            job_results.append(result)
            rows = [value for _key, value in result.output]
        assert rows is not None
        if query.order_by is not None and query.order_by.descending:
            rows = rows[::-1]
        if query.limit is not None:
            rows = rows[: query.limit]
        return QueryExecution(
            sql=sql,
            columns=plan.output_columns,
            rows=rows,
            plan=plan,
            job_results=job_results,
        )


def _safe_column_name(name: str) -> str:
    """Make an output-column label a valid identifier (CTAS columns).

    Unaliased aggregates render as e.g. ``sum(adRevenue)``; Hive likewise
    rewrites them (``_c1``) — we keep the readable base instead.
    """
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"c_{cleaned}"
    return cleaned.strip("_") or "col"


def _infer_type(rows: list[tuple], index: int) -> str:
    """Infer a column type from the first non-None value."""
    for row in rows:
        value = row[index]
        if value is None:
            continue
        if isinstance(value, bool):
            return "int"
        if isinstance(value, int):
            return "int"
        if isinstance(value, float):
            return "double"
        return "string"
    return "string"
