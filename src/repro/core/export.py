"""Machine-readable exports of the figure data (CSV / JSON).

The paper's plots are bar charts per workload; downstream users want the
series as data.  These helpers serialise a suite characterization into
one flat table, one row per workload, with every Figure 3–12 metric —
suitable for spreadsheets, pandas, or re-plotting.

Alongside the figure tables there are per-job exports: cluster
``JobTimeline``s (one row per job, disk rates flattened per node) and
multi-tenant ``MixResult``s (one row per trace job with wait/turnaround/
slowdown), so a whole scheduled day of traffic serialises the same way a
single characterization does.
"""

from __future__ import annotations

import csv
import io
import json

from repro.core.characterize import Characterization
from repro.core.metrics import STALL_CATEGORIES

#: column order of the export
COLUMNS = [
    "workload",
    "group",
    "ipc",
    "kernel_instruction_fraction",
    "l1i_mpki",
    "itlb_walks_pki",
    "l2_mpki",
    "l3_hit_ratio_of_l2_misses",
    "dtlb_walks_pki",
    "branch_misprediction_ratio",
    *[f"stall_{category}" for category in STALL_CATEGORIES],
]


def characterizations_to_rows(chars: list[Characterization]) -> list[dict]:
    """One dict per workload with every figure metric."""
    rows = []
    for c in chars:
        m = c.metrics
        row = {
            "workload": c.name,
            "group": c.group,
            "ipc": m.ipc,
            "kernel_instruction_fraction": m.kernel_instruction_fraction,
            "l1i_mpki": m.l1i_mpki,
            "itlb_walks_pki": m.itlb_walks_pki,
            "l2_mpki": m.l2_mpki,
            "l3_hit_ratio_of_l2_misses": m.l3_hit_ratio_of_l2_misses,
            "dtlb_walks_pki": m.dtlb_walks_pki,
            "branch_misprediction_ratio": m.branch_misprediction_ratio,
        }
        for category in STALL_CATEGORIES:
            row[f"stall_{category}"] = m.stall_breakdown.get(category, 0.0)
        rows.append(row)
    return rows


def to_csv(chars: list[Characterization]) -> str:
    """The full metric table as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=COLUMNS, lineterminator="\n")
    writer.writeheader()
    for row in characterizations_to_rows(chars):
        writer.writerow(row)
    return buffer.getvalue()


def to_json(chars: list[Characterization], indent: int | None = 2) -> str:
    """The full metric table as a JSON array."""
    return json.dumps(characterizations_to_rows(chars), indent=indent)


#: scalar columns of a per-job timeline export (disk rates are appended
#: per node, in sorted node order, as ``disk_writes_per_second_<node>``)
TIMELINE_COLUMNS = [
    "job_name",
    "start_s",
    "map_phase_end_s",
    "end_s",
    "duration_s",
    "map_tasks",
    "reduce_tasks",
    "network_bytes",
    "maps_node_local",
    "maps_rack_local",
    "maps_off_rack",
]


def timelines_to_rows(timelines: list) -> list[dict]:
    """One flat dict per job timeline.

    Accepts anything with a ``JobTimeline``-shaped ``to_dict()`` —
    including :class:`~repro.cluster.faults.FaultyTimeline`, whose
    resilience counters are dropped from the flat table (use
    ``to_dict()`` directly when you want them).
    """
    dicts = [t.to_dict() for t in timelines]
    nodes = sorted({node for d in dicts for node in d["disk_writes_per_second"]})
    rows = []
    for d in dicts:
        row = {column: d[column] for column in TIMELINE_COLUMNS}
        rates = d["disk_writes_per_second"]
        for node in nodes:
            row[f"disk_writes_per_second_{node}"] = rates.get(node, 0.0)
        rows.append(row)
    return rows


def timelines_to_csv(timelines: list) -> str:
    """Per-job timeline table as CSV text."""
    rows = timelines_to_rows(timelines)
    fieldnames = list(rows[0]) if rows else TIMELINE_COLUMNS
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def timelines_to_json(timelines: list, indent: int | None = 2) -> str:
    """Per-job reports as a JSON array (full ``to_dict()``, nothing dropped)."""
    return json.dumps([t.to_dict() for t in timelines], indent=indent)


#: column order of the per-trace-job mix export
MIX_COLUMNS = [
    "index",
    "workload",
    "scale",
    "size_class",
    "user",
    "pool",
    "arrival_s",
    "first_launch_s",
    "finished_s",
    "ideal_s",
    "wait_s",
    "turnaround_s",
    "slowdown",
    "maps_node_local",
    "maps_rack_local",
    "maps_off_rack",
]


def mix_to_rows(mix) -> list[dict]:
    """One dict per trace job of a :class:`~repro.cluster.tenancy.MixResult`."""
    rows = []
    for report in mix.reports:
        d = report.to_dict()
        rows.append({column: d[column] for column in MIX_COLUMNS})
    return rows


def mix_to_csv(mix) -> str:
    """The per-trace-job accounting of a mix as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=MIX_COLUMNS, lineterminator="\n")
    writer.writeheader()
    for row in mix_to_rows(mix):
        writer.writerow(row)
    return buffer.getvalue()


def mix_to_json(mix, indent: int | None = 2) -> str:
    """The whole mix — trace, per-job reports, outcome — as JSON."""
    return json.dumps(mix.to_dict(), indent=indent)


#: column order of the per-stage workflow export
WORKFLOW_COLUMNS = [
    "stage",
    "status",
    "executions",
    "retries",
    "recomputes",
    "first_launch_s",
    "finished_s",
    "output",
    "cancelled_by",
]


def workflow_to_rows(result) -> list[dict]:
    """One dict per stage of a :class:`~repro.cluster.workflow.WorkflowResult`."""
    rows = []
    for report in result.reports:
        d = report.to_dict()
        rows.append({column: d[column] for column in WORKFLOW_COLUMNS})
    return rows


def workflow_to_csv(result) -> str:
    """The per-stage accounting of a workflow run as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=WORKFLOW_COLUMNS, lineterminator="\n"
    )
    writer.writeheader()
    for row in workflow_to_rows(result):
        writer.writerow(row)
    return buffer.getvalue()


def workflow_to_json(result, indent: int | None = 2) -> str:
    """The whole workflow run — stages, accounting, outputs — as JSON."""
    return json.dumps(result.to_dict(), indent=indent)


#: column order of the per-job instance export (the flat CSV view of a
#: WfCommons-style recorded instance; the JSON form is the instance's own
#: validated document, via ``Instance.to_json``)
INSTANCE_COLUMNS = [
    "index",
    "workload",
    "scale",
    "user",
    "pool",
    "size_class",
    "submit_s",
    "start_s",
    "finish_s",
    "ideal_s",
]


def instance_to_rows(instance) -> list[dict]:
    """One flat dict per job of a :class:`~repro.recipes.Instance`."""
    rows = []
    for job in instance.jobs:
        d = job.to_dict()
        rows.append({column: d[column] for column in INSTANCE_COLUMNS})
    return rows


def instance_to_csv(instance) -> str:
    """The per-job view of a recorded instance as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=INSTANCE_COLUMNS, lineterminator="\n"
    )
    writer.writeheader()
    for row in instance_to_rows(instance):
        writer.writerow(row)
    return buffer.getvalue()


#: column order of the per-bucket repetition-benchmark export
REPBENCH_COLUMNS = [
    "bucket",
    "target_rate",
    "queries",
    "hits",
    "misses",
    "hit_rate",
    "saved_s",
    "executed_s",
    "mean_effective_s",
    "mean_cold_s",
]


def repbench_to_rows(report) -> list[dict]:
    """One dict per bucket of a
    :class:`~repro.recipes.RepetitionBenchReport`."""
    rows = []
    for bucket in report.buckets:
        d = bucket.to_dict()
        rows.append({column: d[column] for column in REPBENCH_COLUMNS})
    return rows


def repbench_to_csv(report) -> str:
    """The per-bucket cache-payoff curve as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=REPBENCH_COLUMNS, lineterminator="\n"
    )
    writer.writeheader()
    for row in repbench_to_rows(report):
        writer.writerow(row)
    return buffer.getvalue()


def repbench_to_json(report, indent: int | None = 2) -> str:
    """The whole repetition benchmark — buckets + settings — as JSON."""
    return json.dumps(report.to_dict(), indent=indent)
