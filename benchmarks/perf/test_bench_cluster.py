"""Cluster engine micro-benchmarks: reference vs fast vs warm-cache.

A scaled-down ``bench-cluster`` run (the CLI twin is ``python -m repro
bench-cluster``, which times the full pinned matrix and writes the
repo-root ``BENCH_cluster.json``).  The equivalence rows shrink so the
perf tier stays quick, but the headline row runs at full pinned scale —
a day-long 100k-job trace on 1000 simulated nodes — and asserts the
wall-clock budget the fast path exists to meet:

* every engine comparison in the report is bit-identical,
* the fast engine beats the reference engine cold,
* the 100k-job scale row dispatches in tens of seconds cold and
  replays from the mix cache in single-digit seconds (asserted with
  slack for CI machine noise).
"""

from __future__ import annotations

import json

import pytest

from conftest import run_once
from repro.perf.clusterbench import (
    DEFAULT_SCALE_JOBS,
    DEFAULT_SCALE_NODES,
    MixSpec,
    _mix_capacity,
    _mix_fair,
    _mix_faults,
    _mix_fifo,
    _mix_scale,
    run_cluster_bench,
    write_cluster_report,
)

#: The pinned regimes at perf-tier size; the scale row stays full-size.
SMOKE_MATRIX = [
    MixSpec("fifo-contended", "fifo", 400, 32, _mix_fifo),
    MixSpec("fair-preemption", "fair", 60, 8, _mix_fair),
    MixSpec("capacity-chains", "capacity", 48, 8, _mix_capacity),
    MixSpec("faults-speculation", "faults", 48, 8, _mix_faults),
    MixSpec(
        "scale-day-trace",
        "scale",
        DEFAULT_SCALE_JOBS,
        DEFAULT_SCALE_NODES,
        _mix_scale,
        compare_reference=False,
    ),
]


@pytest.fixture(scope="module")
def cluster_report(tmp_path_factory):
    cache_root = tmp_path_factory.mktemp("bench-cluster-cache")
    return run_cluster_bench(matrix=SMOKE_MATRIX, cache_root=str(cache_root))


def test_bench_cluster_report(benchmark, cluster_report, tmp_path):
    """Write and sanity-check a BENCH_cluster.json from the sampled run."""
    path = run_once(
        benchmark,
        lambda: write_cluster_report(
            cluster_report, str(tmp_path / "BENCH_cluster.json")
        ),
    )
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["schema"] == 1
    assert payload["totals"]["mixes"] == len(SMOKE_MATRIX)
    for row in payload["mixes"]:
        assert row["bit_identical"], f"{row['name']}: engines disagree"
        assert row["jobs_per_sec_fast"] > 0
    totals = payload["totals"]
    print(
        f"\nengine speedup (cold) {totals['engine_speedup_cold']:.2f}x, "
        f"fast path (warm cache) {totals['fastpath_speedup_warm']:.1f}x, "
        f"scale row {totals['scale_jobs']} jobs / {totals['scale_nodes']} "
        f"nodes: {totals['scale_fast_seconds']:.1f}s cold, "
        f"{totals['scale_warm_seconds']:.2f}s warm"
    )


def test_fast_engine_not_slower(cluster_report):
    totals = cluster_report.totals()
    assert totals["bit_identical"]
    assert totals["engine_speedup_cold"] > 1.0, totals


def test_scale_row_wall_clock(cluster_report):
    """The headline claim: 1000 nodes / 100k jobs in seconds.

    Budgets carry ~4x slack over measured times (cold ~18s, warm ~9s on
    the pinned matrix) so only a real perf regression trips them.
    """
    totals = cluster_report.totals()
    assert totals["scale_jobs"] == DEFAULT_SCALE_JOBS
    assert totals["scale_nodes"] == DEFAULT_SCALE_NODES
    assert totals["scale_fast_seconds"] < 75.0, totals
    assert totals["scale_warm_seconds"] < 40.0, totals
    assert totals["scale_jobs_per_sec"] >= 1000, totals


def test_warm_cache_pays_off(cluster_report):
    totals = cluster_report.totals()
    assert totals["fastpath_speedup_warm"] >= 5.0, totals
    # Each mix probes the cache twice: the populating miss, then a hit.
    assert totals["cache_hit_rate"] == pytest.approx(0.5)
