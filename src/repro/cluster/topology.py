"""Failure domains: the node → rack map.

Production Hadoop clusters fail in *correlated* bundles — a rack power
drop or a ToR switch death takes every datanode in the rack down at
once — which is exactly why HDFS's default block placement spreads
replicas across racks.  :class:`Topology` is the cluster's failure-domain
map: an ordered assignment of node names to named racks that HDFS
placement, the two-tier network, three-level delay scheduling and the
rack-level fault injectors all consult.

A *flat* topology (every node in one rack, or no topology at all) is the
degenerate single-failure-domain case and preserves the pre-topology
semantics bit-identically: every consumer guards its rack-aware branch
with :attr:`Topology.is_flat`, so a one-rack cluster takes exactly the
stock code paths.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Topology:
    """An ordered node → rack assignment.

    ``assignments`` is a tuple of ``(node_name, rack_name)`` pairs, one
    per node, in cluster node order.  Rack names appear in first-use
    order; the same structure round-trips through the namenode's
    :class:`~repro.cluster.journal.FsImage` so a replayed namespace
    places blocks exactly like the live one did.
    """

    assignments: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.assignments:
            raise ValueError("a topology needs at least one node")
        seen: set[str] = set()
        for pair in self.assignments:
            if len(pair) != 2:
                raise ValueError(f"expected (node, rack) pair, got {pair!r}")
            node, rack = pair
            if not node or not isinstance(node, str):
                raise ValueError(f"node name must be a non-empty string: {node!r}")
            if not rack or not isinstance(rack, str):
                raise ValueError(f"rack name must be a non-empty string: {rack!r}")
            if node in seen:
                raise ValueError(f"node {node!r} assigned to more than one rack")
            seen.add(node)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def flat(cls, node_names) -> "Topology":
        """Every node in one rack: the pre-topology single failure domain."""
        return cls(tuple((name, "rack1") for name in node_names))

    @classmethod
    def uniform(cls, node_names, num_racks: int) -> "Topology":
        """Split *node_names* into *num_racks* contiguous racks.

        Racks are named ``rack1..rackN`` and sized as evenly as possible
        (earlier racks take the remainder), mirroring how a sequentially
        cabled cluster fills racks.
        """
        names = list(node_names)
        if num_racks < 1:
            raise ValueError("num_racks must be at least 1")
        if num_racks > len(names):
            raise ValueError(
                f"cannot split {len(names)} node(s) into {num_racks} racks"
            )
        base, extra = divmod(len(names), num_racks)
        assignments = []
        cursor = 0
        for rack_index in range(num_racks):
            size = base + (1 if rack_index < extra else 0)
            for name in names[cursor : cursor + size]:
                assignments.append((name, f"rack{rack_index + 1}"))
            cursor += size
        return cls(tuple(assignments))

    # -- queries --------------------------------------------------------------

    @property
    def _rack_by_node(self) -> dict[str, str]:
        return dict(self.assignments)

    @property
    def racks(self) -> tuple[str, ...]:
        """Rack names in first-appearance order."""
        seen: list[str] = []
        for _, rack in self.assignments:
            if rack not in seen:
                seen.append(rack)
        return tuple(seen)

    @property
    def is_flat(self) -> bool:
        """One failure domain: rack-aware branches must stay stock."""
        return len(self.racks) <= 1

    def has_node(self, name: str) -> bool:
        return any(node == name for node, _ in self.assignments)

    def rack_of(self, name: str) -> str:
        for node, rack in self.assignments:
            if node == name:
                return rack
        raise KeyError(f"node {name!r} is not in the topology")

    def nodes_in(self, rack: str) -> tuple[str, ...]:
        members = tuple(node for node, r in self.assignments if r == rack)
        if not members:
            raise KeyError(f"no such rack: {rack!r}")
        return members

    def same_rack(self, a: str, b: str) -> bool:
        return self.rack_of(a) == self.rack_of(b)

    def node_names(self) -> tuple[str, ...]:
        return tuple(node for node, _ in self.assignments)
