"""Instruction-stream synthesis.

The paper measures real binaries with hardware counters.  We reproduce the
measurement path with *synthetic traces*: each workload is described by a
:class:`TraceSpec` — instruction mix, basic-block structure, code footprint,
memory-region access patterns, dependency (ILP) structure, branch
regularity, and kernel-mode behaviour — and :class:`SyntheticTrace` expands
the spec into a deterministic stream of :class:`~repro.uarch.isa.MicroOp`.

The spec parameters are filled in two ways (see DESIGN.md §2):

* *measured* quantities come from actually running the algorithm on the
  MapReduce engine (instruction mix from operation counts, kernel fraction
  from I/O-syscall intensity, working-set sizes from real data sizes), and
* *declared* characteristics encode qualitative facts about the binary the
  paper ran (e.g. JVM + Hadoop framework ⇒ several-hundred-KB hot code
  footprint) and are documented per workload.

No performance-counter value is ever written into a spec; the counters come
out of the cache/TLB/predictor/pipeline mechanics.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace

try:  # NumPy backs the batched fast path; the scalar path never needs it.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the package
    _np = None

from repro.uarch.isa import MicroOp, OpClass

#: Base virtual address of user code, data regions and kernel space.
USER_CODE_BASE = 0x0040_0000
USER_DATA_BASE = 0x1000_0000
KERNEL_CODE_BASE = 0x8000_0000_0000
KERNEL_DATA_BASE = 0x8800_0000_0000

#: Hard cap on dependency distances so the pipeline can keep a short ring.
MAX_DEP_DISTANCE = 256


@dataclass(frozen=True)
class MemoryRegion:
    """One logical data structure the workload touches.

    Attributes:
        name: label for diagnostics.
        size_bytes: the region's working-set size.
        weight: relative probability a data access lands in this region.
        pattern: ``"sequential"`` (streaming scan), ``"strided"`` (fixed
            stride), ``"random"`` (uniform within the region), or
            ``"pointer"`` (uniform random *and* serialised behind the
            previous load, modelling pointer chasing).
        stride: byte stride for the ``"strided"`` pattern.
        burst: for ``"random"``/``"pointer"``, the number of consecutive
            accesses made at each randomly chosen location (records and
            objects span multiple words, so truly single-word random access
            is rare; HPCC-RandomAccess uses ``burst=1``).
        hot_fraction: fraction of the region forming a hot subset (object
            popularity is skewed in real heaps; 1.0 means uniform access).
        hot_weight: probability a random jump lands in the hot subset.
    """

    name: str
    size_bytes: int
    weight: float = 1.0
    pattern: str = "sequential"
    stride: int = 64
    burst: int = 4
    hot_fraction: float = 1.0
    hot_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"region {self.name}: size must be positive")
        if self.weight < 0:
            raise ValueError(f"region {self.name}: weight must be non-negative")
        if self.pattern not in ("sequential", "strided", "random", "pointer"):
            raise ValueError(f"region {self.name}: unknown pattern {self.pattern!r}")
        if self.stride <= 0:
            raise ValueError(f"region {self.name}: stride must be positive")
        if self.burst <= 0:
            raise ValueError(f"region {self.name}: burst must be positive")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError(f"region {self.name}: hot_fraction must be in (0, 1]")
        if not 0.0 <= self.hot_weight <= 1.0:
            raise ValueError(f"region {self.name}: hot_weight must be in [0, 1]")


@dataclass(frozen=True)
class TraceSpec:
    """Complete description of a synthetic instruction stream."""

    name: str
    instructions: int
    seed: int = 20130730  # arXiv date of the paper; any fixed seed works

    # --- instruction mix (fractions of all micro-ops) ---
    load_fraction: float = 0.25
    store_fraction: float = 0.12
    fp_fraction: float = 0.02
    mul_fraction: float = 0.02
    div_fraction: float = 0.001

    # --- code behaviour ---
    mean_block_len: float = 8.0
    code_footprint: int = 64 * 1024
    hot_code_fraction: float = 0.15
    hot_code_weight: float = 0.9
    call_fraction: float = 0.15
    indirect_fraction: float = 0.05
    indirect_targets: int = 4
    loop_branch_fraction: float = 0.45
    mean_trip_count: float = 12.0
    branch_regularity: float = 0.9
    taken_bias: float = 0.5

    # --- data behaviour ---
    regions: tuple[MemoryRegion, ...] = field(
        default_factory=lambda: (MemoryRegion("heap", 1 << 20),)
    )
    access_bytes: int = 8

    # --- dependency / ILP structure ---
    dep_mean: float = 4.0
    dep_density: float = 0.7

    # --- RAT pressure (partial-register / read-port conflicts) ---
    partial_register_ratio: float = 0.05

    # --- kernel mode ---
    kernel_fraction: float = 0.02
    kernel_episode_len: int = 150
    kernel_code_footprint: int = 96 * 1024
    kernel_buffer_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ValueError("instructions must be positive")
        mix = (
            self.load_fraction
            + self.store_fraction
            + self.fp_fraction
            + self.mul_fraction
            + self.div_fraction
        )
        if mix >= 1.0:
            raise ValueError(f"instruction mix sums to {mix:.3f} >= 1")
        for frac_name in (
            "load_fraction",
            "store_fraction",
            "fp_fraction",
            "mul_fraction",
            "div_fraction",
            "hot_code_fraction",
            "hot_code_weight",
            "call_fraction",
            "indirect_fraction",
            "loop_branch_fraction",
            "branch_regularity",
            "taken_bias",
            "dep_density",
            "partial_register_ratio",
            "kernel_fraction",
        ):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{frac_name} must be in [0, 1], got {value}")
        if self.kernel_fraction >= 1.0:
            raise ValueError("kernel_fraction must be < 1")
        if self.mean_block_len < 2.0:
            raise ValueError("mean_block_len must be >= 2")
        if self.code_footprint <= 0 or self.kernel_code_footprint <= 0:
            raise ValueError("code footprints must be positive")
        if not self.regions:
            raise ValueError("at least one memory region is required")

    def with_instructions(self, instructions: int) -> "TraceSpec":
        """Return a copy of the spec with a different trace length."""
        return replace(self, instructions=instructions)

    def scaled_regions(self, factor: float) -> "TraceSpec":
        """Return a copy with every region's working set scaled by *factor*."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        regions = tuple(
            replace(r, size_bytes=max(64, int(r.size_bytes * factor))) for r in self.regions
        )
        return replace(self, regions=regions)

    def scaled(self, scale: int) -> "TraceSpec":
        """Scale every footprint down by *scale* to match a scaled machine.

        Workload profiles declare *paper-scale* characteristics (real code
        and working-set sizes).  To keep the per-kilo-instruction counters
        meaningful on short traces, the characterization framework shrinks
        both the machine (:func:`repro.uarch.config.scaled_machine`) and
        the spec by the same factor, preserving every footprint-to-capacity
        ratio.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        if scale == 1:
            return self
        shrunk = self.scaled_regions(1.0 / scale)
        return replace(
            shrunk,
            code_footprint=max(1024, self.code_footprint // scale),
            kernel_code_footprint=max(1024, self.kernel_code_footprint // scale),
            kernel_buffer_bytes=max(4096, self.kernel_buffer_bytes // scale),
        )


@dataclass
class TraceStats:
    """Counts accumulated while a trace is generated."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    fp_ops: int = 0
    kernel_instructions: int = 0

    @property
    def kernel_fraction(self) -> float:
        return self.kernel_instructions / self.instructions if self.instructions else 0.0


#: Default number of micro-ops per batch on the fast path.
DEFAULT_BATCH_SIZE = 8192


class TraceBatch:
    """A chunk of micro-ops stored as parallel field columns.

    The batched fast engine (:mod:`repro.perf.fastpath`) consumes micro-ops
    in struct-of-arrays form: one column per :class:`MicroOp` field, in
    program order.  Columns are plain Python lists internally (the scalar
    simulation loop indexes them directly); :meth:`arrays` exposes the same
    columns as NumPy arrays for the vectorized decode kernels.
    """

    __slots__ = ("op", "pc", "addr", "taken", "target", "dep1", "dep2", "kernel")

    def __init__(self, op, pc, addr, taken, target, dep1, dep2, kernel) -> None:
        self.op = op
        self.pc = pc
        self.addr = addr
        self.taken = taken
        self.target = target
        self.dep1 = dep1
        self.dep2 = dep2
        self.kernel = kernel

    def __len__(self) -> int:
        return len(self.op)

    def arrays(self) -> dict[str, "object"]:
        """Return the columns as parallel NumPy arrays (int64/bool)."""
        if _np is None:  # pragma: no cover - numpy ships with the package
            raise RuntimeError("NumPy is required for TraceBatch.arrays()")
        return {
            "op": _np.asarray(self.op, dtype=_np.int64),
            "pc": _np.asarray(self.pc, dtype=_np.int64),
            "addr": _np.asarray(self.addr, dtype=_np.int64),
            "taken": _np.asarray(self.taken, dtype=bool),
            "target": _np.asarray(self.target, dtype=_np.int64),
            "dep1": _np.asarray(self.dep1, dtype=_np.int64),
            "dep2": _np.asarray(self.dep2, dtype=_np.int64),
            "kernel": _np.asarray(self.kernel, dtype=bool),
        }

    def micro_ops(self) -> list[MicroOp]:
        """Rehydrate the batch into :class:`MicroOp` objects (tests only)."""
        return [
            MicroOp(
                OpClass(o),
                pc,
                addr=addr,
                taken=taken,
                target=target,
                dep1=d1,
                dep2=d2,
                kernel=kern,
            )
            for o, pc, addr, taken, target, d1, d2, kern in zip(
                self.op,
                self.pc,
                self.addr,
                self.taken,
                self.target,
                self.dep1,
                self.dep2,
                self.kernel,
            )
        ]


class _Columns:
    """Append-side accumulator behind :meth:`SyntheticTrace.iter_batches`."""

    __slots__ = ("op", "pc", "addr", "taken", "target", "dep1", "dep2", "kernel")

    def __init__(self) -> None:
        self.op: list[int] = []
        self.pc: list[int] = []
        self.addr: list[int] = []
        self.taken: list[bool] = []
        self.target: list[int] = []
        self.dep1: list[int] = []
        self.dep2: list[int] = []
        self.kernel: list[bool] = []

    def __len__(self) -> int:
        return len(self.op)

    def carve(self, n: int) -> TraceBatch:
        """Cut the first *n* accumulated ops into a :class:`TraceBatch`."""
        batch = TraceBatch(
            self.op[:n],
            self.pc[:n],
            self.addr[:n],
            self.taken[:n],
            self.target[:n],
            self.dep1[:n],
            self.dep2[:n],
            self.kernel[:n],
        )
        del self.op[:n]
        del self.pc[:n]
        del self.addr[:n]
        del self.taken[:n]
        del self.target[:n]
        del self.dep1[:n]
        del self.dep2[:n]
        del self.kernel[:n]
        return batch


class _BranchSite:
    """Static branch site state: kind, bias, loop trip counter, targets."""

    __slots__ = ("kind", "bias_taken", "trip", "remaining", "targets", "back_target")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.bias_taken = True
        self.trip = 0
        self.remaining = 0
        self.targets: list[int] = []
        self.back_target = 0


class _RegionCursor:
    """Per-region access-pattern state."""

    __slots__ = ("region", "base", "offset", "burst_left")

    def __init__(self, region: MemoryRegion, base: int) -> None:
        self.region = region
        self.base = base
        self.offset = 0
        self.burst_left = 0


class SyntheticTrace:
    """Deterministic micro-op stream expanded from a :class:`TraceSpec`.

    Iterating the trace twice yields the identical sequence (the RNG is
    reseeded per iteration), so the pipeline can stream without the trace
    being materialised.
    """

    def __init__(self, spec: TraceSpec) -> None:
        self.spec = spec
        self.stats = TraceStats()

    # -- public API --------------------------------------------------------

    def __iter__(self):
        return self._generate()

    def __len__(self) -> int:
        return self.spec.instructions

    def materialize(self) -> list[MicroOp]:
        """Expand the full stream into a list (tests / small traces only)."""
        return list(self._generate())

    # -- batched generation (fast path) ------------------------------------

    def generate_batch(self, n: int) -> TraceBatch:
        """Expand the first ``min(n, len(self))`` micro-ops into one batch.

        The batch carries the identical op stream the scalar iterator
        yields — same RNG consumption, same fields — but in parallel
        column (struct-of-arrays) form.
        """
        if n <= 0:
            raise ValueError("batch size must be positive")
        for batch in self.iter_batches(batch_size=n):
            return batch
        raise AssertionError("trace produced no micro-ops")  # pragma: no cover

    def iter_batches(self, batch_size: int = DEFAULT_BATCH_SIZE):
        """Yield the full stream as :class:`TraceBatch` chunks.

        This is the batch twin of :meth:`__iter__`: it replays the exact
        same RNG call sequence (the equivalence is property-tested in
        ``tests/uarch/test_fastpath.py``), so the concatenated batches are
        bit-identical to the scalar stream, including ``self.stats``.
        """
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        spec = self.spec
        rng = random.Random(spec.seed)
        stats = TraceStats()
        self.stats = stats

        f = spec.kernel_fraction
        episode_len = max(1, spec.kernel_episode_len)
        user_gap = episode_len * (1.0 - f) / f if f > 0 else 0.0
        if user_gap > spec.instructions:
            user_gap = 0.0

        user = _ModeState(spec, rng, kernel=False)
        kern = _ModeState(spec, rng, kernel=True)
        cols = _Columns()

        remaining = spec.instructions
        kernel_remaining = 0
        while remaining > 0:
            if kernel_remaining > 0:
                state = kern
                take = min(kernel_remaining, remaining)
            else:
                state = user
                if user_gap > 0:
                    gap = max(1, int(user_gap * rng.uniform(0.7, 1.3)))
                else:
                    gap = remaining
                take = min(gap, remaining)
            produced = 0
            while produced < take:
                produced += state.emit_block_cols(
                    min(take - produced, remaining - produced), cols
                )
            remaining -= produced
            if state is kern:
                kernel_remaining -= produced
                stats.kernel_instructions += produced
            elif user_gap > 0 and remaining > 0:
                kernel_remaining = max(1, int(episode_len * rng.uniform(0.7, 1.3)))
            stats.instructions += produced
            stats.loads += state.block_loads
            stats.stores += state.block_stores
            stats.branches += state.block_branches
            stats.fp_ops += state.block_fp
            state.clear_block_counts()
            while len(cols) >= batch_size:
                yield cols.carve(batch_size)
        if len(cols):
            yield cols.carve(len(cols))

    # -- generation --------------------------------------------------------

    def _generate(self):
        spec = self.spec
        rng = random.Random(spec.seed)
        stats = TraceStats()
        self.stats = stats

        # Syscall-episode cadence chosen so kernel instructions make up
        # kernel_fraction of the stream: user gap = L * (1 - f) / f.
        # Lengths are jittered ±30 % rather than exponential so the
        # realised fraction concentrates tightly around the target.
        f = spec.kernel_fraction
        episode_len = max(1, spec.kernel_episode_len)
        user_gap = episode_len * (1.0 - f) / f if f > 0 else 0.0
        if user_gap > spec.instructions:
            # The expected number of episodes is below one: all-user trace.
            user_gap = 0.0

        user = _ModeState(spec, rng, kernel=False)
        kern = _ModeState(spec, rng, kernel=True)

        remaining = spec.instructions
        kernel_remaining = 0
        while remaining > 0:
            if kernel_remaining > 0:
                state = kern
                take = min(kernel_remaining, remaining)
            else:
                state = user
                if user_gap > 0:
                    gap = max(1, int(user_gap * rng.uniform(0.7, 1.3)))
                else:
                    gap = remaining
                take = min(gap, remaining)
            produced = 0
            while produced < take:
                block = state.emit_block(min(take - produced, remaining - produced))
                for uop in block:
                    yield uop
                produced += len(block)
            remaining -= produced
            if state is kern:
                kernel_remaining -= produced
                stats.kernel_instructions += produced
            elif user_gap > 0 and remaining > 0:
                kernel_remaining = max(1, int(episode_len * rng.uniform(0.7, 1.3)))
            stats.instructions += produced
            stats.loads += state.block_loads
            stats.stores += state.block_stores
            stats.branches += state.block_branches
            stats.fp_ops += state.block_fp
            state.clear_block_counts()


class _ModeState:
    """Generation state for one privilege mode (user or kernel)."""

    __slots__ = (
        "spec",
        "rng",
        "kernel",
        "pc",
        "code_base",
        "code_size",
        "hot_size",
        "sites",
        "cursors",
        "weights_cum",
        "weight_total",
        "last_load_distance",
        "index",
        "op_choices",
        "op_cum",
        "block_loads",
        "block_stores",
        "block_branches",
        "block_fp",
    )

    def __init__(self, spec: TraceSpec, rng: random.Random, kernel: bool) -> None:
        self.spec = spec
        self.rng = rng
        self.kernel = kernel
        if kernel:
            self.code_base = KERNEL_CODE_BASE
            self.code_size = spec.kernel_code_footprint
            regions = (
                MemoryRegion("kbuf-src", spec.kernel_buffer_bytes, 1.0, "sequential"),
                MemoryRegion("kbuf-dst", spec.kernel_buffer_bytes, 1.0, "sequential"),
            )
            data_base = KERNEL_DATA_BASE
        else:
            self.code_base = USER_CODE_BASE
            self.code_size = spec.code_footprint
            regions = spec.regions
            data_base = USER_DATA_BASE
        self.hot_size = max(256, int(self.code_size * spec.hot_code_fraction))
        self.pc = self.code_base
        self.sites: dict[int, _BranchSite] = {}
        self.cursors = []
        base = data_base
        for region in regions:
            self.cursors.append(_RegionCursor(region, base))
            # Keep regions disjoint and page aligned.
            base += ((region.size_bytes + 4095) // 4096 + 1) * 4096
        total = sum(r.weight for r in regions)
        if total <= 0:
            raise ValueError("region weights must sum to a positive value")
        acc = 0.0
        self.weights_cum = []
        for region in regions:
            acc += region.weight / total
            self.weights_cum.append(acc)
        self.weight_total = total
        self.last_load_distance = 0
        self.index = 0

        # Kernel code is copy-loop flavoured: more memory ops.
        if kernel:
            load_f, store_f = 0.34, 0.30
            fp_f, mul_f, div_f = 0.0, 0.0, 0.0
        else:
            load_f = spec.load_fraction
            store_f = spec.store_fraction
            fp_f = spec.fp_fraction
            mul_f = spec.mul_fraction
            div_f = spec.div_fraction
        choices = [
            (OpClass.LOAD, load_f),
            (OpClass.STORE, store_f),
            (OpClass.FP, fp_f),
            (OpClass.MUL, mul_f),
            (OpClass.DIV, div_f),
        ]
        alu_f = 1.0 - sum(weight for _, weight in choices)
        choices.append((OpClass.ALU, alu_f))
        self.op_choices = [op for op, _ in choices]
        cum = []
        acc = 0.0
        for _, weight in choices:
            acc += weight
            cum.append(acc)
        self.op_cum = cum
        self.block_loads = 0
        self.block_stores = 0
        self.block_branches = 0
        self.block_fp = 0

    def clear_block_counts(self) -> None:
        self.block_loads = 0
        self.block_stores = 0
        self.block_branches = 0
        self.block_fp = 0

    # -- helpers -----------------------------------------------------------

    def _pick_op(self) -> OpClass:
        r = self.rng.random()
        cum = self.op_cum
        for i, threshold in enumerate(cum):
            if r < threshold:
                return self.op_choices[i]
        return OpClass.ALU

    def _pick_region(self) -> _RegionCursor:
        if len(self.cursors) == 1:
            return self.cursors[0]
        r = self.rng.random()
        for i, threshold in enumerate(self.weights_cum):
            if r < threshold:
                return self.cursors[i]
        return self.cursors[-1]

    def _data_address(self, cursor: _RegionCursor) -> tuple[int, bool]:
        """Return (address, is_pointer_chase) for one data access."""
        region = cursor.region
        spec = self.spec
        if region.pattern == "sequential":
            addr = cursor.base + cursor.offset
            cursor.offset = (cursor.offset + spec.access_bytes) % region.size_bytes
            return addr, False
        if region.pattern == "strided":
            addr = cursor.base + cursor.offset
            cursor.offset = (cursor.offset + region.stride) % region.size_bytes
            return addr, False
        # random / pointer: jump to a fresh location, then walk the record.
        if cursor.burst_left > 0:
            cursor.burst_left -= 1
            cursor.offset = (cursor.offset + spec.access_bytes) % region.size_bytes
        else:
            cursor.burst_left = region.burst - 1
            span = region.size_bytes
            if region.hot_fraction < 1.0 and self.rng.random() < region.hot_weight:
                span = max(spec.access_bytes, int(region.size_bytes * region.hot_fraction))
            cursor.offset = self.rng.randrange(0, span, spec.access_bytes or 8)
        # Pointer chasing serialises only the jump access, not the record walk.
        chase = region.pattern == "pointer" and cursor.burst_left == region.burst - 1
        return cursor.base + cursor.offset, chase

    def _dep_pair(self) -> tuple[int, int]:
        spec = self.spec
        rng = self.rng
        if rng.random() >= spec.dep_density:
            return 0, 0
        mean = max(1.0, spec.dep_mean)
        p = 1.0 / mean
        d1 = self._geometric(p)
        d2 = self._geometric(p) if rng.random() < 0.4 else 0
        return min(d1, MAX_DEP_DISTANCE, self.index), min(d2, MAX_DEP_DISTANCE, self.index)

    def _geometric(self, p: float) -> int:
        u = self.rng.random()
        if p >= 1.0:
            # Degenerate geometric (dep_mean <= 1): the draw is always 1.
            return 1
        # Inverse-CDF geometric starting at 1.
        return max(1, int(math.log(max(u, 1e-12)) / math.log(1.0 - p)) + 1)

    def _jump_target(self) -> int:
        """Pick a far-jump target: hot region with high probability."""
        rng = self.rng
        if rng.random() < self.spec.hot_code_weight:
            span = self.hot_size
        else:
            span = self.code_size
        return self.code_base + rng.randrange(0, max(span, 4), 4)

    @staticmethod
    def _pc_hash(pc: int) -> int:
        """Deterministic 32-bit hash of a pc — static code layout."""
        h = (pc * 0x9E3779B1) & 0xFFFFFFFF
        h ^= h >> 15
        return (h * 0x85EBCA6B) & 0xFFFFFFFF

    def _block_body_len(self, pc: int) -> int:
        """Static body length of the basic block starting at *pc*.

        Derived from a hash of the pc (not the RNG) so that re-executing a
        block — e.g. each loop iteration — replays the identical layout and
        branch sites, which is what lets the predictors learn.
        """
        u = (self._pc_hash(pc) >> 8) / float(1 << 24)
        mean = self.spec.mean_block_len - 1.0
        length = int(-mean * math.log(max(u, 1e-9))) + 1
        return min(length, 64)

    def _branch_site(self, pc: int) -> _BranchSite:
        site = self.sites.get(pc)
        if site is not None:
            return site
        rng = self.rng
        spec = self.spec
        # The *kind* of branch at a pc is a static property: derive the
        # selectors from the pc hash, not from the RNG stream.
        h = self._pc_hash(pc ^ 0x51ED)
        kind_u = (h & 0xFFFF) / 65536.0
        sub_u = ((h >> 16) & 0xFFFF) / 65536.0
        if kind_u < spec.call_fraction:
            if sub_u < spec.indirect_fraction:
                site = _BranchSite("indirect")
                site.targets = [self._jump_target() for _ in range(max(2, spec.indirect_targets))]
            else:
                site = _BranchSite("jump")
                site.targets = [self._jump_target()]
        elif kind_u < spec.call_fraction + (1 - spec.call_fraction) * spec.loop_branch_fraction:
            site = _BranchSite("loop")
            site.trip = max(1, int(rng.expovariate(1.0 / max(spec.mean_trip_count, 1.0))))
            site.remaining = site.trip
            back = rng.randrange(16, 256, 4)
            site.back_target = max(self.code_base, pc - back)
        else:
            site = _BranchSite("cond")
            site.bias_taken = sub_u < spec.taken_bias
            site.targets = [pc + rng.randrange(8, 128, 4)]
        self.sites[pc] = site
        return site

    # -- block emission ----------------------------------------------------

    def emit_block(self, budget: int) -> list[MicroOp]:
        """Emit one basic block (body + terminating branch), ≤ *budget* ops."""
        spec = self.spec
        rng = self.rng
        body_len = min(self._block_body_len(self.pc), max(1, budget - 1))
        ops: list[MicroOp] = []
        pc = self.pc
        for _ in range(body_len):
            op_class = self._pick_op()
            dep1, dep2 = self._dep_pair()
            addr = 0
            if op_class == OpClass.LOAD or op_class == OpClass.STORE:
                cursor = self._pick_region()
                addr, chase = self._data_address(cursor)
                if chase and self.last_load_distance:
                    # Serialise behind the previous load (pointer chasing).
                    dep1 = min(self.last_load_distance, MAX_DEP_DISTANCE)
                if op_class == OpClass.LOAD:
                    self.block_loads += 1
                else:
                    self.block_stores += 1
            elif op_class == OpClass.FP:
                self.block_fp += 1
            uop = MicroOp(op_class, pc, addr=addr, dep1=dep1, dep2=dep2, kernel=self.kernel)
            ops.append(uop)
            if op_class == OpClass.LOAD:
                self.last_load_distance = 1
            elif self.last_load_distance:
                self.last_load_distance += 1
            pc += 4
            self.index += 1

        if len(ops) < budget:
            branch_pc = pc
            site = self._branch_site(branch_pc)
            taken, target = self._resolve_branch(site, branch_pc)
            ops.append(
                MicroOp(
                    OpClass.BRANCH,
                    branch_pc,
                    taken=taken,
                    target=target if taken else branch_pc + 4,
                    dep1=1,
                    kernel=self.kernel,
                )
            )
            self.block_branches += 1
            self.index += 1
            if self.last_load_distance:
                self.last_load_distance += 1
            self.pc = target if taken else branch_pc + 4
            # Keep the pc inside the mode's code segment.
            if not self.code_base <= self.pc < self.code_base + self.code_size:
                self.pc = self.code_base + (
                    (self.pc - self.code_base) % self.code_size
                ) // 4 * 4
        else:
            self.pc = pc
        return ops

    def emit_block_cols(self, budget: int, cols: _Columns) -> int:
        """Batch twin of :meth:`emit_block`: append fields to *cols*.

        Emits the identical micro-op fields in the identical RNG call
        order; the only differences are structural (column appends instead
        of :class:`~repro.uarch.isa.MicroOp` construction, and the cheap
        per-op samplers inlined).  Floating-point expressions are kept
        operation-for-operation identical so every ``int()`` truncation
        lands on the same value.
        """
        spec = self.spec
        rng = self.rng
        rng_random = rng.random
        body_len = min(self._block_body_len(self.pc), max(1, budget - 1))
        pc = self.pc
        kernel = self.kernel
        index = self.index
        last_load = self.last_load_distance
        op_cum = self.op_cum
        # Plain ints in the hot loop: IntEnum comparisons cost ~2x.
        op_choices = [int(choice) for choice in self.op_choices]
        op_alu = int(OpClass.ALU)
        op_load = int(OpClass.LOAD)
        op_store = int(OpClass.STORE)
        op_fp = int(OpClass.FP)
        dep_density = spec.dep_density
        # Same operands as _geometric: p, then log(1 - p) — division by the
        # precomputed log is bit-identical to dividing by math.log(1.0 - p).
        # None marks the degenerate p == 1 case (_geometric returns 1).
        dep_p = 1.0 / max(1.0, spec.dep_mean)
        log_one_minus_p = math.log(1.0 - dep_p) if dep_p < 1.0 else None
        weights_cum = self.weights_cum
        cursors = self.cursors
        single_region = len(cursors) == 1
        log = math.log

        col_op = cols.op
        col_pc = cols.pc
        col_addr = cols.addr
        col_taken = cols.taken
        col_target = cols.target
        col_dep1 = cols.dep1
        col_dep2 = cols.dep2
        col_kernel = cols.kernel

        count = 0
        for _ in range(body_len):
            # _pick_op, inlined.
            r = rng_random()
            op_class = op_alu
            for j, threshold in enumerate(op_cum):
                if r < threshold:
                    op_class = op_choices[j]
                    break
            # _dep_pair, inlined (including _geometric).
            if rng_random() >= dep_density:
                dep1 = 0
                dep2 = 0
            else:
                u = rng_random()
                if log_one_minus_p is None:
                    d1 = 1
                else:
                    d1 = int(log(u if u > 1e-12 else 1e-12) / log_one_minus_p) + 1
                    if d1 < 1:
                        d1 = 1
                if rng_random() < 0.4:
                    u = rng_random()
                    if log_one_minus_p is None:
                        d2 = 1
                    else:
                        d2 = int(log(u if u > 1e-12 else 1e-12) / log_one_minus_p) + 1
                        if d2 < 1:
                            d2 = 1
                else:
                    d2 = 0
                dep1 = d1 if d1 < MAX_DEP_DISTANCE else MAX_DEP_DISTANCE
                if dep1 > index:
                    dep1 = index
                dep2 = d2 if d2 < MAX_DEP_DISTANCE else MAX_DEP_DISTANCE
                if dep2 > index:
                    dep2 = index
            addr = 0
            if op_class == op_load or op_class == op_store:
                # _pick_region, inlined.
                if single_region:
                    cursor = cursors[0]
                else:
                    r = rng_random()
                    cursor = cursors[-1]
                    for j, threshold in enumerate(weights_cum):
                        if r < threshold:
                            cursor = cursors[j]
                            break
                addr, chase = self._data_address(cursor)
                if chase and last_load:
                    dep1 = min(last_load, MAX_DEP_DISTANCE)
                if op_class == op_load:
                    self.block_loads += 1
                else:
                    self.block_stores += 1
            elif op_class == op_fp:
                self.block_fp += 1
            col_op.append(op_class)
            col_pc.append(pc)
            col_addr.append(addr)
            col_taken.append(False)
            col_target.append(0)
            col_dep1.append(dep1)
            col_dep2.append(dep2)
            col_kernel.append(kernel)
            if op_class == op_load:
                last_load = 1
            elif last_load:
                last_load += 1
            pc += 4
            index += 1
            count += 1

        if count < budget:
            branch_pc = pc
            site = self._branch_site(branch_pc)
            taken, target = self._resolve_branch(site, branch_pc)
            col_op.append(int(OpClass.BRANCH))
            col_pc.append(branch_pc)
            col_addr.append(0)
            col_taken.append(taken)
            col_target.append(target if taken else branch_pc + 4)
            col_dep1.append(1)
            col_dep2.append(0)
            col_kernel.append(kernel)
            self.block_branches += 1
            index += 1
            count += 1
            if last_load:
                last_load += 1
            self.pc = target if taken else branch_pc + 4
            if not self.code_base <= self.pc < self.code_base + self.code_size:
                self.pc = self.code_base + (
                    (self.pc - self.code_base) % self.code_size
                ) // 4 * 4
        else:
            self.pc = pc
        self.index = index
        self.last_load_distance = last_load
        return count

    def _resolve_branch(self, site: _BranchSite, pc: int) -> tuple[bool, int]:
        rng = self.rng
        spec = self.spec
        if site.kind == "jump":
            return True, site.targets[0]
        if site.kind == "indirect":
            return True, rng.choice(site.targets)
        if site.kind == "loop":
            site.remaining -= 1
            if site.remaining > 0:
                return True, site.back_target
            site.remaining = site.trip
            return False, pc + 4
        # Conditional, data-dependent branch with a fixed forward target.
        if rng.random() < spec.branch_regularity:
            taken = site.bias_taken
        else:
            taken = rng.random() < spec.taken_bias
        return taken, site.targets[0] if taken else pc + 4
