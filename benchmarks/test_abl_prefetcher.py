"""Ablation: hardware prefetcher on/off.

Westmere ships stream prefetchers, and the model includes a next-line
prefetcher with honest DRAM-bandwidth accounting (docs/uarch-model.md).
Turning it off shows how much of every workload's performance the
prefetcher carries: pure streaming (STREAM) collapses outright, and even
the "random" workloads lose their sequential components (RandomAccess's
update buffers, the services' log/page streams) — on this class of
workload the stream prefetcher is load-bearing across the board, which
is why the model ships with it on (docs/uarch-model.md).
"""

from dataclasses import replace

from conftest import run_once

from repro.core import DCBench, characterize
from repro.uarch.config import scaled_machine

WORKLOADS = ["HPCC-STREAM", "Sort", "K-means", "HPCC-RandomAccess", "Data Serving"]


def test_prefetcher(benchmark):
    suite = DCBench.default()
    on = scaled_machine(8)
    off = replace(on, prefetch=False)

    def harness():
        rows = {}
        for name in WORKLOADS:
            entry = suite.entry(name)
            with_pf = characterize(entry, instructions=120_000, machine=on)
            without = characterize(entry, instructions=120_000, machine=off)
            rows[name] = (
                with_pf.metrics.ipc,
                without.metrics.ipc,
                with_pf.metrics.l2_mpki,
                without.metrics.l2_mpki,
            )
        return rows

    rows = run_once(benchmark, harness)
    print()
    print("Ablation: prefetcher on vs off")
    print(f"{'workload':<18s}{'IPC on':>8s}{'IPC off':>9s}{'L2 on':>8s}{'L2 off':>8s}")
    for name, (ipc_on, ipc_off, l2_on, l2_off) in rows.items():
        print(f"{name:<18s}{ipc_on:>8.2f}{ipc_off:>9.2f}{l2_on:>8.1f}{l2_off:>8.1f}")

    def loss(name):
        ipc_on, ipc_off, _, _ = rows[name]
        return 1.0 - ipc_off / ipc_on

    # Pure streaming leans on the prefetcher hardest...
    assert loss("HPCC-STREAM") > 0.3
    for name in WORKLOADS:
        # ... and it never hurts anyone.
        assert loss(name) > -0.02, name
    # The least-sequential workload here loses the least.
    assert loss("HPCC-RandomAccess") == min(loss(name) for name in WORKLOADS)
    # Without prefetch, the streaming L2 miss rate explodes.
    _, _, l2_on, l2_off = rows["HPCC-STREAM"]
    assert l2_off > 10 * max(l2_on, 0.1)