"""Fitting and generation: the pinned statistical round-trip contract.

The tentpole guarantee: ``fit(generate(recipe))`` reproduces the
recipe's workload-mix proportions, arrival rate and (exact) repetition
rate within pinned tolerances, deterministically per seed.
"""

import pytest

from repro.cluster.tenancy import TraceJob, WorkloadTrace, generate_trace
from repro.recipes import (
    Recipe,
    ScaleStats,
    TemplateStats,
    UserRecipe,
    classify_repeats,
    fit_recipe,
    generate_from_recipe,
    instance_from_trace,
    repetition_bucket,
)


def make_user(name, weight, exact, varied=0.0, workloads=("Grep", "WordCount")):
    templates = tuple(
        TemplateStats(
            workload=w,
            weight=1.0 / len(workloads),
            pool="interactive",
            size_class="small",
            scales=ScaleStats(low=0.05, high=0.25, mean=0.15),
        )
        for w in workloads
    )
    return UserRecipe(
        user=name, weight=weight, num_jobs=100,
        exact_repeat_rate=exact, varied_repeat_rate=varied,
        templates=templates,
    )


PINNED = Recipe(
    name="pinned",
    source_seed=0,
    source_jobs=200,
    arrival_rate_per_s=2.0,
    users=(
        make_user("alice", 0.5, exact=0.6),
        make_user("bob", 0.5, exact=0.1),
    ),
)


class TestClassification:
    def test_exact_varied_fresh(self):
        trace = WorkloadTrace(
            (
                TraceJob(0, "Grep", 0.05, 0.0, "u", "p", "small"),
                TraceJob(1, "Grep", 0.05, 0.1, "u", "p", "small"),  # exact
                TraceJob(2, "Grep", 0.10, 0.2, "u", "p", "small"),  # varied
                TraceJob(3, "Sort", 0.05, 0.3, "u", "p", "small"),  # fresh
            ),
            seed=0,
            arrival_rate_per_s=0.0,
        )
        jobs = list(instance_from_trace(trace).jobs)
        assert classify_repeats(jobs) == ["fresh", "exact", "varied", "fresh"]

    def test_buckets_are_deciles(self):
        assert repetition_bucket(0.0) == "0-10%"
        assert repetition_bucket(0.55) == "50-60%"
        assert repetition_bucket(1.0) == "90-100%"
        with pytest.raises(ValueError):
            repetition_bucket(1.5)


class TestFit:
    def test_fitting_is_deterministic(self):
        trace = generate_trace(seed=5, num_jobs=12, arrival_rate_per_s=2.0)
        assert fit_recipe(trace) == fit_recipe(trace)

    def test_user_weights_and_mix_sum_to_one(self):
        trace = generate_trace(seed=5, num_jobs=20, arrival_rate_per_s=2.0)
        recipe = fit_recipe(trace)
        assert sum(u.weight for u in recipe.users) == pytest.approx(1.0)
        assert sum(recipe.workload_mix().values()) == pytest.approx(1.0)
        for user in recipe.users:
            assert sum(t.weight for t in user.templates) == pytest.approx(1.0)

    def test_arrival_rate_is_the_window_mle(self):
        trace = generate_trace(seed=5, num_jobs=40, arrival_rate_per_s=2.0)
        recipe = fit_recipe(trace)
        span = trace.jobs[-1].arrival_s
        assert recipe.arrival_rate_per_s == pytest.approx(40 / span)

    def test_degenerate_scale_range_gets_a_smoothing_prior(self):
        trace = WorkloadTrace(
            (
                TraceJob(0, "Grep", 0.1, 0.0, "u", "p", "small"),
                TraceJob(1, "Grep", 0.1, 0.5, "u", "p", "small"),
            ),
            seed=0,
            arrival_rate_per_s=0.0,
        )
        stats = fit_recipe(trace).user("u").templates[0].scales
        assert stats.low == pytest.approx(0.09)
        assert stats.high == pytest.approx(0.11)
        assert stats.mean == pytest.approx(0.1)

    def test_hive_fingerprints_survive_fitting(self):
        trace = WorkloadTrace(
            (TraceJob(0, "Hive-bench", 0.05, 0.0, "u", "p", "small"),),
            seed=0,
            arrival_rate_per_s=0.0,
        )
        template = fit_recipe(trace).user("u").templates[0]
        assert len(template.plan_fingerprints) == 4

    def test_recipe_json_round_trips_exactly(self):
        trace = generate_trace(seed=5, num_jobs=15, arrival_rate_per_s=2.0)
        recipe = fit_recipe(trace)
        assert Recipe.from_json(recipe.to_json()) == recipe
        assert Recipe.from_json(PINNED.to_json()) == PINNED

    def test_bad_recipe_json_is_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            Recipe.from_json("{nope")


class TestGenerate:
    def test_generation_is_deterministic_per_seed(self):
        a = generate_from_recipe(PINNED, num_jobs=50, seed=3)
        b = generate_from_recipe(PINNED, num_jobs=50, seed=3)
        c = generate_from_recipe(PINNED, num_jobs=50, seed=4)
        assert a.to_json() == b.to_json()
        assert a.to_json() != c.to_json()

    def test_generates_any_length(self):
        assert len(generate_from_recipe(PINNED, num_jobs=7, seed=0).jobs) == 7
        assert len(generate_from_recipe(PINNED, num_jobs=400, seed=0).jobs) == 400
        with pytest.raises(ValueError):
            generate_from_recipe(PINNED, num_jobs=0)

    def test_generated_trace_is_valid_and_replayable(self):
        trace = generate_from_recipe(PINNED, num_jobs=30, seed=1)
        arrivals = [job.arrival_s for job in trace.jobs]
        assert arrivals == sorted(arrivals)
        assert WorkloadTrace.from_json(trace.to_json()).to_dict() == trace.to_dict()


class TestRoundTripContract:
    """The pinned contract: fit(generate(recipe)) ≈ recipe."""

    REFIT = fit_recipe(generate_from_recipe(PINNED, num_jobs=600, seed=7))

    def test_exact_repetition_rates_round_trip(self):
        # per-user exact repeat rates within ±0.08 at n=600
        assert self.REFIT.user("alice").exact_repeat_rate == pytest.approx(
            0.6, abs=0.08
        )
        assert self.REFIT.user("bob").exact_repeat_rate == pytest.approx(
            0.1, abs=0.08
        )

    def test_arrival_rate_round_trips(self):
        assert self.REFIT.arrival_rate_per_s == pytest.approx(2.0, rel=0.10)

    def test_mix_proportions_round_trip(self):
        mix = self.REFIT.workload_mix()
        assert set(mix) == {"Grep", "WordCount"}
        # expected 50/50; history resampling widens the variance, so ±0.15
        assert mix["Grep"] == pytest.approx(0.5, abs=0.15)

    def test_user_shares_round_trip(self):
        assert self.REFIT.user("alice").weight == pytest.approx(0.5, abs=0.08)

    def test_full_loop_from_a_real_trace(self):
        # record (submit-only) → fit → generate → refit: the source has
        # zero exact repeats, and the regenerated trace must not invent
        # a materially nonzero rate (degenerate ranges once caused 0.58).
        trace = generate_trace(seed=3, num_jobs=10, arrival_rate_per_s=2.0)
        recipe = fit_recipe(instance_from_trace(trace))
        refit = fit_recipe(generate_from_recipe(recipe, num_jobs=300, seed=1))
        exact = sum(u.weight * u.exact_repeat_rate for u in refit.users)
        assert exact <= 0.02
        assert refit.arrival_rate_per_s == pytest.approx(
            recipe.arrival_rate_per_s, rel=0.15
        )
