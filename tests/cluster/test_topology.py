"""Failure domains: topology, rack-aware placement, rack-level chaos.

Three contracts pin the feature:

* **Flat is free** — with no topology, a one-rack topology, or
  ``racks=1`` the whole stack (placement, scheduling, network) is
  bit-identical to the pre-topology model.
* **No node holds two replicas** — under any topology, any degradation
  (more replicas than racks, more replicas than nodes) and after
  re-replication, a block's replicas are always distinct nodes.
* **Racks bound the blast radius** — under a whole-rack outage (power
  or ToR) rack-aware placement finishes the paper workloads with zero
  data loss and bit-identical output, while flat placement on the same
  seed demonstrably loses blocks.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.__main__ import main
from repro.cluster import (
    FaultPlan,
    FaultyCluster,
    HadoopCluster,
    Topology,
    make_cluster,
    restore_into,
    snapshot,
)
from repro.cluster.chaos import run_rack_chaos
from repro.cluster.hdfs import Hdfs
from repro.cluster.network import Network, Nic
from repro.cluster.node import Node
from repro.perf.procfs import ProcFs
from repro.workloads import workload

WORKLOADS = ("WordCount", "Sort", "PageRank")
SEEDS = (0, 1, 2)


def make_hdfs(n_nodes=6, racks=None, block_size=1024, replication=3):
    nodes = [Node(f"n{i}") for i in range(n_nodes)]
    topology = (
        Topology.uniform([n.name for n in nodes], racks) if racks else None
    )
    return Hdfs(
        nodes, block_size=block_size, replication=replication, topology=topology
    )


class TestTopology:
    def test_uniform_splits_contiguously(self):
        topo = Topology.uniform(["a", "b", "c", "d"], 2)
        assert topo.racks == ("rack1", "rack2")
        assert topo.nodes_in("rack1") == ("a", "b")
        assert topo.nodes_in("rack2") == ("c", "d")

    def test_uniform_remainder_goes_to_early_racks(self):
        topo = Topology.uniform(["a", "b", "c", "d", "e"], 2)
        assert topo.nodes_in("rack1") == ("a", "b", "c")
        assert topo.nodes_in("rack2") == ("d", "e")

    def test_flat_is_one_rack(self):
        topo = Topology.flat(["a", "b"])
        assert topo.is_flat
        assert topo.racks == ("rack1",)
        assert topo.same_rack("a", "b")

    def test_multi_rack_is_not_flat(self):
        topo = Topology.uniform(["a", "b"], 2)
        assert not topo.is_flat
        assert not topo.same_rack("a", "b")

    def test_rack_of_and_has_node(self):
        topo = Topology.uniform(["a", "b", "c"], 3)
        assert topo.rack_of("b") == "rack2"
        assert topo.has_node("c") and not topo.has_node("ghost")
        with pytest.raises(KeyError):
            topo.rack_of("ghost")
        with pytest.raises(KeyError):
            topo.nodes_in("rack9")

    def test_rejects_bad_configs(self):
        with pytest.raises(ValueError):
            Topology(())
        with pytest.raises(ValueError):
            Topology((("a", "rack1"), ("a", "rack2")))  # duplicate node
        with pytest.raises(ValueError):
            Topology((("", "rack1"),))
        with pytest.raises(ValueError):
            Topology.uniform(["a", "b"], 0)
        with pytest.raises(ValueError):
            Topology.uniform(["a", "b"], 3)  # more racks than nodes

    def test_make_cluster_one_rack_builds_no_topology(self):
        assert make_cluster(4, racks=1).topology is None

    def test_make_cluster_multi_rack(self):
        cluster = make_cluster(6, racks=3)
        assert cluster.topology is not None
        assert cluster.topology.racks == ("rack1", "rack2", "rack3")
        assert cluster.network.topology is cluster.topology
        assert cluster.hdfs.topology is cluster.topology


class TestRackAwarePlacement:
    def test_replicas_span_racks(self):
        hdfs = make_hdfs(n_nodes=6, racks=2, replication=3)
        hdfs.create_file("f", 10 * 1024)
        topo = hdfs.topology
        for block in hdfs.files["f"].blocks:
            assert len({topo.rack_of(r) for r in block.replicas}) >= 2
        assert hdfs.rack_under_diverse_blocks == 0

    def test_hdfs_default_policy_shape(self):
        # First replica on the (rotating) writer, second off that rack,
        # third on the second replica's rack — the era's HDFS default.
        hdfs = make_hdfs(n_nodes=6, racks=2, replication=3)
        hdfs.create_file("f", 512)
        topo = hdfs.topology
        first, second, third = hdfs.files["f"].blocks[0].replicas
        assert topo.rack_of(second) != topo.rack_of(first)
        assert topo.rack_of(third) == topo.rack_of(second)

    def test_under_diversity_gauge_counts_degraded_placements(self):
        # All live nodes in one rack except one dead off-rack node:
        # placement cannot diversify and must say so.
        hdfs = make_hdfs(n_nodes=4, racks=2, replication=3)
        for name in hdfs.topology.nodes_in("rack2"):
            hdfs.fail_node(name)
        hdfs.create_file("f", 512)
        assert hdfs.rack_under_diverse_blocks >= 1

    def test_re_replication_restores_rack_diversity(self):
        hdfs = make_hdfs(n_nodes=6, racks=3, replication=2)
        hdfs.create_file("f", 4 * 1024)
        victims = hdfs.topology.nodes_in("rack2")
        under = []
        for name in victims:
            u, lost = hdfs.fail_node(name)
            assert lost == []
            under.extend(u)
        for block in under:
            pair = hdfs.re_replicate_block(block)
            assert pair is not None
        topo = hdfs.topology
        for block in hdfs.files["f"].blocks:
            racks = {topo.rack_of(r) for r in block.replicas}
            assert len(racks) >= 2
            assert len(set(block.replicas)) == len(block.replicas)

    def test_fsimage_roundtrip_preserves_topology(self):
        hdfs = make_hdfs(n_nodes=6, racks=2, replication=3)
        hdfs.create_file("f", 5 * 1024)
        image = snapshot(hdfs)
        fresh = make_hdfs(n_nodes=6, racks=None, block_size=1024)
        restore_into(fresh, image)
        assert fresh.topology is not None
        assert fresh.topology.assignments == hdfs.topology.assignments
        assert fresh.rack_under_diverse_blocks == hdfs.rack_under_diverse_blocks
        assert [b.replicas for b in fresh.files["f"].blocks] == [
            b.replicas for b in hdfs.files["f"].blocks
        ]


class TestReplicaInvariant:
    """No block ever holds two replicas on one node — any topology."""

    @given(
        n_nodes=st.integers(min_value=1, max_value=9),
        racks=st.integers(min_value=0, max_value=4),
        replication=st.integers(min_value=1, max_value=5),
        size=st.integers(min_value=1, max_value=20_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_placement_and_repair_keep_replicas_distinct(
        self, n_nodes, racks, replication, size
    ):
        if racks > n_nodes:
            racks = n_nodes
        hdfs = make_hdfs(
            n_nodes=n_nodes,
            racks=racks or None,
            block_size=1024,
            replication=replication,
        )
        hdfs.create_file("f", size)
        for block in hdfs.files["f"].blocks:
            assert len(set(block.replicas)) == len(block.replicas)
        if n_nodes < 2:
            return
        under, _ = hdfs.fail_node("n0")
        for block in under:
            hdfs.re_replicate_block(block)
        for block in hdfs.files["f"].blocks:
            assert len(set(block.replicas)) == len(block.replicas)
            assert "n0" not in block.replicas


class TestFlatEquivalence:
    """An explicit one-rack topology changes nothing, bit for bit."""

    def _stock_and_flat(self, num_slaves=4):
        stock = make_cluster(num_slaves, block_size=64 * 1024)
        slaves = [
            Node(f"slave{i + 1}", map_slots=24, reduce_slots=12)
            for i in range(num_slaves)
        ]
        flat = HadoopCluster(
            slaves,
            block_size=64 * 1024,
            topology=Topology.flat([n.name for n in slaves]),
        )
        return stock, flat

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_workload_runs_bit_identical(self, name):
        stock, flat = self._stock_and_flat()
        a = workload(name).run(scale=0.2, cluster=stock)
        b = workload(name).run(scale=0.2, cluster=flat)
        assert repr(a.output) == repr(b.output)
        assert [t.to_dict() for t in a.timelines] == [
            t.to_dict() for t in b.timelines
        ]

    def test_faulty_run_bit_identical(self):
        plan = FaultPlan(
            map_failure_rate=0.3, node_crashes=(("slave2", 0.02),), seed=7
        )
        stock, flat = self._stock_and_flat()
        a = workload("WordCount").run(
            scale=0.2, cluster=FaultyCluster(stock, plan)
        )
        b = workload("WordCount").run(
            scale=0.2, cluster=FaultyCluster(flat, plan)
        )
        assert repr(a.output) == repr(b.output)
        assert a.duration_s == b.duration_s

    def test_flat_runs_count_all_remote_maps_off_rack(self):
        stock, _ = self._stock_and_flat()
        run = workload("Sort").run(scale=0.2, cluster=stock)
        for t in run.timelines:
            assert t.maps_rack_local == 0
            assert t.maps_node_local + t.maps_off_rack == t.map_tasks
            assert t.node_racks == {}


class TestObservationalFreedom:
    """Topology without a core_bandwidth observes, never perturbs."""

    def _transfer_series(self, network, nics):
        times = []
        now = 0.0
        for i in range(6):
            src, dst = nics[i % len(nics)], nics[(i + 1) % len(nics)]
            now = network.transfer(now, src, dst, 10_000 * (i + 1))
            times.append(now)
        return times

    def test_counting_cross_rack_bytes_keeps_timing_identical(self):
        def build(topology):
            nics = [Nic(ProcFs(f"n{i}")) for i in range(4)]
            return Network(topology=topology), nics

        topo = Topology.uniform([f"n{i}" for i in range(4)], 2)
        plain_net, plain_nics = build(None)
        rack_net, rack_nics = build(topo)
        assert self._transfer_series(plain_net, plain_nics) == (
            self._transfer_series(rack_net, rack_nics)
        )
        assert plain_net.cross_rack_bytes == 0
        assert rack_net.cross_rack_bytes > 0
        assert any(n.procfs.bytes_cross_rack for n in rack_nics)

    def test_core_bandwidth_slows_only_cross_rack(self):
        topo = Topology.uniform(["n0", "n1"], 2)
        fast = Network(topology=topo)
        slow = Network(topology=topo, core_bandwidth=1e6)
        a = [Nic(ProcFs("n0")), Nic(ProcFs("n1"))]
        b = [Nic(ProcFs("n0")), Nic(ProcFs("n1"))]
        t_fast = fast.transfer(0.0, a[0], a[1], 1_000_000)
        t_slow = slow.transfer(0.0, b[0], b[1], 1_000_000)
        assert t_slow > t_fast

    def test_procfs_locality_counters(self):
        procfs = ProcFs("n0")
        procfs.record_map_locality("node")
        procfs.record_map_locality("rack")
        procfs.record_map_locality("off")
        assert (procfs.maps_node_local, procfs.maps_rack_local,
                procfs.maps_off_rack) == (1, 1, 1)
        with pytest.raises(ValueError):
            procfs.record_map_locality("nearby")
        line = procfs.render_topology()
        assert "maps_rack_local 1" in line and "bytes_cross_rack 0" in line


_rack_results: dict[tuple[str, int, str], object] = {}


def rack_chaos(name: str, seed: int, mode: str):
    key = (name, seed, mode)
    if key not in _rack_results:
        _rack_results[key] = run_rack_chaos(name, seed, mode=mode)
    return _rack_results[key]


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mode", ("power", "tor"))
class TestRackChaosMatrix:
    def test_rack_aware_survives_rack_loss(self, name, seed, mode):
        result = rack_chaos(name, seed, mode)
        assert result.identical_output
        assert result.rack_blocks_lost == 0
        assert result.survived

    def test_flat_placement_demonstrably_loses(self, name, seed, mode):
        result = rack_chaos(name, seed, mode)
        assert result.flat_blocks_lost >= 1
        assert result.flat_demonstrably_loses

    def test_outage_was_actually_injected(self, name, seed, mode):
        result = rack_chaos(name, seed, mode)
        if mode == "power":
            assert result.accounting["nodes_crashed"]
        else:
            assert result.accounting["nodes_partitioned"]


class TestRackChaosProperties:
    def test_same_seed_is_exactly_reproducible(self):
        a = run_rack_chaos("WordCount", 1, mode="power")
        b = run_rack_chaos("WordCount", 1, mode="power")
        assert a.chaotic_duration_s == b.chaotic_duration_s
        assert a.plan == b.plan
        assert a.victim_rack == b.victim_rack

    def test_modes_are_validated(self):
        with pytest.raises(ValueError):
            run_rack_chaos("WordCount", 0, mode="meteor")
        with pytest.raises(ValueError):
            run_rack_chaos("WordCount", 0, racks=1)


class TestRackFaultPlans:
    def test_rack_faults_need_multi_rack_topology(self):
        plan = FaultPlan(rack_outages=(("rack2", 0.1),), seed=0)
        with pytest.raises(ValueError):
            FaultyCluster(make_cluster(4), plan)

    def test_unknown_rack_rejected(self):
        plan = FaultPlan(rack_outages=(("rack9", 0.1),), seed=0)
        with pytest.raises(ValueError):
            FaultyCluster(make_cluster(4, racks=2), plan)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(rack_outages=(("", 0.1),))
        with pytest.raises(ValueError):
            FaultPlan(rack_outages=(("rack1", -1.0),))
        with pytest.raises(ValueError):
            FaultPlan(tor_failures=(("rack1", 0.0, 0.0),))
        with pytest.raises(ValueError):
            FaultPlan(correlated_disk_failures=(("rack1", 0),))

    def test_correlated_disk_failures_hit_one_rack(self):
        cluster = make_cluster(6, block_size=16 * 1024, racks=2)
        plan = FaultPlan(
            correlated_disk_failures=(("rack2", 3),), scrub=True, seed=5
        )
        run = workload("WordCount").run(
            scale=0.3, cluster=FaultyCluster(cluster, plan)
        )
        accounting = run.timelines[0].to_dict()["resilience"]
        assert accounting["corrupt_replicas_injected"] >= 1


class TestCliTopology:
    def test_run_with_racks_and_rack_fail(self):
        assert main(["run", "Grep", "--scale", "0.1", "--racks", "2",
                     "--rack-fail", "rack2:0.05"]) == 0

    def test_run_with_tor_fail(self):
        assert main(["run", "Grep", "--scale", "0.1", "--racks", "2",
                     "--tor-fail", "rack2:0.05:0.5"]) == 0

    def test_rack_fail_requires_racks(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "Grep", "--rack-fail", "rack2:0.05"])
        assert excinfo.value.code == 2

    def test_unknown_rack_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "Grep", "--racks", "2", "--rack-fail", "rack9:0.05"])
        assert excinfo.value.code == 2

    def test_malformed_specs_rejected(self):
        for spec in ("rack2", "rack2:x", ":0.5", "rack2:-1"):
            with pytest.raises(SystemExit) as excinfo:
                main(["run", "Grep", "--racks", "2", "--rack-fail", spec])
            assert excinfo.value.code == 2
        for spec in ("rack2:0.1", "rack2:0.1:0", ":0.1:0.5", "rack2:0.1:nan"):
            with pytest.raises(SystemExit) as excinfo:
                main(["run", "Grep", "--racks", "2", "--tor-fail", spec])
            assert excinfo.value.code == 2

    def test_mix_with_racks_and_rack_fail(self):
        assert main(["mix", "--jobs", "3", "--slaves", "4", "--racks", "2",
                     "--rack-fail", "rack2:0.5"]) == 0

    def test_mix_tor_fail_requires_racks(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["mix", "--jobs", "3", "--tor-fail", "rack2:0.1:0.5"])
        assert excinfo.value.code == 2
