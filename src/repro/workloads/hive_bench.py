"""Hive-bench — Table I row 11 (Hivebench, HIVE-396).

The data-warehouse workload: the benchmark's four representative
SQL-like statements (grep selection, rankings filter, uservisits
aggregation, rankings⋈uservisits join) executed on the mini-Hive engine,
which compiles each into MapReduce stages exactly as Hive 0.6 does.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.cluster import HadoopCluster
from repro.hive import HiveSession
from repro.mapreduce.engine import LocalEngine
from repro.uarch.trace import MemoryRegion
from repro.workloads import datagen
from repro.workloads.base import DataAnalysisWorkload, WorkloadInfo, WorkloadRun, register

#: The benchmark's statements (shapes from the HIVE-396 / Pavlo suite).
BENCH_QUERIES = (
    # grep selection
    "SELECT searchWord, COUNT(*) AS hits FROM uservisits "
    "WHERE searchWord LIKE '%ab%' GROUP BY searchWord",
    # rankings selection
    "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 100",
    # uservisits aggregation
    "SELECT sourceIP, SUM(adRevenue) AS totalRevenue FROM uservisits GROUP BY sourceIP",
    # join
    "SELECT uv.sourceIP, SUM(uv.adRevenue) AS totalRevenue FROM rankings r "
    "JOIN uservisits uv ON r.pageURL = uv.destURL "
    "WHERE r.pageRank > 50 GROUP BY uv.sourceIP ORDER BY totalRevenue DESC LIMIT 10",
)


@register
class HiveBenchWorkload(DataAnalysisWorkload):
    info = WorkloadInfo(
        name="Hive-bench",
        input_description="156 GB DBtable",
        input_gb_low=156,
        retired_instructions_1e9=3659,
        source="Hivebench",
        scenarios=(
            ("search engine", "Data warehouse operations"),
            ("electronic commerce", "Data warehouse operations"),
        ),
        table1_row=11,
    )

    BASE_PAGES = 1500
    BASE_VISITS = 6000

    def run(
        self,
        scale: float = 1.0,
        cluster: HadoopCluster | None = None,
        engine: LocalEngine | None = None,
    ) -> WorkloadRun:
        session = HiveSession(engine=engine or LocalEngine(), cluster=cluster)
        session.create_table(
            "rankings",
            [("pageURL", "string"), ("pageRank", "int"), ("avgDuration", "int")],
        )
        session.create_table(
            "uservisits",
            [
                ("sourceIP", "string"),
                ("destURL", "string"),
                ("adRevenue", "double"),
                ("searchWord", "string"),
            ],
        )
        num_pages = max(2, int(self.BASE_PAGES * scale))
        session.load_rows("rankings", datagen.generate_rankings(num_pages))
        session.load_rows(
            "uservisits",
            datagen.generate_uservisits(max(2, int(self.BASE_VISITS * scale)), num_pages),
        )
        executions = [session.execute(sql) for sql in BENCH_QUERIES]
        job_results = [jr for ex in executions for jr in ex.job_results]
        outputs = {ex.sql: ex.rows for ex in executions}
        merged = self._merge_results(
            self.info.name,
            job_results,
            outputs,
            queries=len(executions),
            stage_counts=[len(ex.job_results) for ex in executions],
        )
        return merged

    def uarch_profile(self) -> dict[str, Any]:
        return {
            "load_fraction": 0.30,
            "store_fraction": 0.12,
            "fp_fraction": 0.03,
            # Hive adds a whole SQL runtime (parser, operators, SerDe) on
            # top of Hadoop: the biggest instruction footprint of the
            # eleven — high L1I misses, like the paper's Figure 7 bar.
            "code_footprint": 896 * 1024,
            "hot_code_fraction": 0.22,
            "call_fraction": 0.2,
            "indirect_fraction": 0.06,  # operator-tree virtual dispatch
            "regions": (
                # table scans
                MemoryRegion("row-store", 144 << 20, 0.25, "sequential"),
                # group-by / join hash tables with skewed keys
                MemoryRegion("hash-tables", 24 << 20, 0.4, "random", burst=3,
                             hot_fraction=0.04, hot_weight=0.9),
            ),
            # materialises between stages: more I/O than single-job workloads
            "kernel_fraction": 0.06,
            "branch_regularity": 0.955,
            "dep_mean": 3.0,
            "dep_density": 0.72,
        }
