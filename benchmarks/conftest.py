"""Shared fixtures for the figure/table regeneration harness.

The full-suite characterization (26 workloads × 200k micro-ops on the
scaled Table III machine) is computed once per session and shared by all
figure benchmarks; each benchmark then regenerates and prints its
figure's series and asserts the paper's shape.
"""

from __future__ import annotations

import pytest

from repro.core.characterize import characterize_suite
from repro.core.suite import DCBench


def pytest_configure(config):
    # Make the harness usable both as `pytest benchmarks/` and with
    # `--benchmark-only`; nothing to do, marker docs only.
    config.addinivalue_line("markers", "figure(num): regenerates one paper figure")


@pytest.fixture(scope="session")
def suite():
    return DCBench.default()


@pytest.fixture(scope="session")
def suite_chars(suite):
    """Characterization of all 26 workloads (the Figures 3–12 dataset)."""
    return characterize_suite(suite)


@pytest.fixture(scope="session")
def chars_by_name(suite_chars):
    return {c.name: c for c in suite_chars}


@pytest.fixture(scope="session")
def da_chars(suite_chars):
    return [c for c in suite_chars if c.group == "data-analysis"]


@pytest.fixture(scope="session")
def service_chars(suite_chars):
    return [c for c in suite_chars if c.group == "service"]


@pytest.fixture(scope="session")
def hpcc_chars(suite_chars):
    return [c for c in suite_chars if c.group == "hpc"]


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark (the harness runs real
    experiments; repetition would only re-measure identical work)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
