"""Tests for JobTracker/NameNode crash injection and recovery.

Covers the two Hadoop-1.x recovery modes — ``restart`` (stock,
``mapred.jobtracker.restart.recover=false``: the in-flight job re-runs
from scratch) and ``resume`` (``recover=true``: the job-history journal
is replayed and completed map outputs on live tasktrackers are reused) —
plus the namespace recovery contract after mixed fault schedules.
"""

import math

import pytest

from repro.cluster.attempts import AttemptState
from repro.cluster.chaos import run_master_crash_chaos
from repro.cluster.cluster import JobWork, MapWork, ReduceWork, make_cluster
from repro.cluster.faults import FaultPlan, FaultyCluster
from repro.workloads import workload

WORKLOADS = ("WordCount", "Sort", "PageRank")
SEEDS = (0, 2, 5, 6, 10)

_results: dict[tuple[str, int], object] = {}


def crash_chaos(name: str, seed: int):
    key = (name, seed)
    if key not in _results:
        _results[key] = run_master_crash_chaos(name, seed=seed)
    return _results[key]


def work(maps=16, cpu=1.0, reduces=4, slaves=4) -> JobWork:
    return JobWork(
        "job",
        maps=[
            MapWork(1 << 20, cpu, 1 << 20, preferred_nodes=(f"slave{i % slaves + 1}",))
            for i in range(maps)
        ],
        reduces=[ReduceWork(4 << 20, 0.2, 1 << 20) for _ in range(reduces)],
    )


def run(plan: FaultPlan, slaves=4, **work_kw):
    cluster = make_cluster(slaves)
    return FaultyCluster(cluster, plan).run_job(work(slaves=slaves, **work_kw))


BASELINE = run(FaultPlan())
MID_JOB = BASELINE.duration_s * 0.4
DOWNTIME = 0.75


class TestPlanValidation:
    def test_rejects_bad_master_fields(self):
        with pytest.raises(ValueError):
            FaultPlan(master_crash_time=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(master_crash_time=math.nan)
        with pytest.raises(ValueError):
            FaultPlan(master_crash_time=math.inf)
        with pytest.raises(ValueError):
            FaultPlan(master_recovery="reboot")
        with pytest.raises(ValueError):
            FaultPlan(master_downtime_s=-0.5)
        with pytest.raises(ValueError):
            FaultPlan(master_downtime_s=math.nan)

    def test_master_crash_counts_as_fault_injection(self):
        assert FaultPlan(master_crash_time=1.0).injects_faults
        assert not FaultPlan().injects_faults


class TestRestartRecovery:
    def test_restart_reruns_the_job_from_scratch(self):
        timeline = run(FaultPlan(
            master_crash_time=MID_JOB,
            master_recovery="restart",
            master_downtime_s=DOWNTIME,
        ))
        # Stock 1.x: everything before the crash is wasted; the job
        # re-runs on an otherwise-idle cluster after the downtime, so the
        # end lands exactly at crash + downtime + fault-free duration.
        expected = MID_JOB + DOWNTIME + BASELINE.duration_s
        assert timeline.end_s == pytest.approx(expected, rel=1e-9)
        assert timeline.master_crashes == 1
        assert timeline.jobs_restarted == 1
        assert timeline.jobs_resumed == 0
        assert timeline.maps_recovered == 0
        assert timeline.recovery_mode == "restart"
        assert timeline.recovery_downtime_s == pytest.approx(DOWNTIME)
        assert timeline.wasted_seconds > 0

    def test_pre_crash_attempts_are_orphaned_in_the_record(self):
        timeline = run(FaultPlan(
            master_crash_time=MID_JOB, master_recovery="restart",
        ))
        orphans = [
            a for a in timeline.attempts if a.reason == "jobtracker lost"
        ]
        assert orphans
        assert all(a.state is AttemptState.KILLED for a in orphans)
        assert all(a.end_s == pytest.approx(MID_JOB) for a in orphans)


class TestResumeRecovery:
    def test_resume_reuses_journaled_map_outputs(self):
        timeline = run(FaultPlan(
            master_crash_time=MID_JOB,
            master_recovery="resume",
            master_downtime_s=DOWNTIME,
        ))
        assert timeline.master_crashes == 1
        assert timeline.jobs_resumed == 1
        assert timeline.jobs_restarted == 0
        assert timeline.maps_recovered > 0
        assert timeline.recovery_mode == "resume"
        assert timeline.recovery_downtime_s == pytest.approx(DOWNTIME)

    def test_resume_is_never_slower_than_restart(self):
        for frac in (0.1, 0.3, 0.5, 0.7, 0.9):
            at = BASELINE.duration_s * frac
            resume = run(FaultPlan(master_crash_time=at, master_recovery="resume"))
            restart = run(FaultPlan(master_crash_time=at, master_recovery="restart"))
            assert BASELINE.duration_s <= resume.duration_s <= restart.duration_s

    def test_resume_equals_restart_when_nothing_completed(self):
        # Crash before the first map commits: the job history is empty,
        # so replaying it recovers nothing and both modes pay full price.
        early = 0.3
        resume = run(FaultPlan(master_crash_time=early, master_recovery="resume"))
        restart = run(FaultPlan(master_crash_time=early, master_recovery="restart"))
        assert resume.maps_recovered == 0
        assert resume.duration_s == pytest.approx(restart.duration_s, rel=1e-9)

    def test_in_flight_attempts_are_killed_and_rescheduled(self):
        timeline = run(FaultPlan(
            master_crash_time=MID_JOB, master_recovery="resume",
        ))
        killed = [a for a in timeline.attempts if a.reason == "jobtracker lost"]
        assert killed
        retried = {a.task_id for a in killed}
        succeeded = {
            a.task_id
            for a in timeline.attempts
            if a.state is AttemptState.SUCCEEDED
        }
        assert retried <= succeeded  # every orphaned task still completed


class TestCrashTiming:
    def test_crash_between_jobs_delays_the_next_submission(self):
        # Crash lands while the cluster is idle between jobs: job 1 is
        # untouched, job 2 waits out the control-plane restart before it
        # can even start.
        plan = FaultPlan(
            master_crash_time=BASELINE.duration_s + 0.5,
            master_recovery="resume",
            master_downtime_s=DOWNTIME,
        )
        faulty = FaultyCluster(make_cluster(4), plan)
        first = faulty.run_job(work())
        faulty.cluster.clock = first.end_s + 1.0  # idle gap spanning the crash
        second = faulty.run_job(work())
        assert first.master_crashes == 0
        assert first.end_s == pytest.approx(BASELINE.end_s)
        assert second.master_crashes == 1
        assert second.jobs_restarted == 0 and second.jobs_resumed == 0
        # Submitted at end+1.0, master back at end+0.5+DOWNTIME: the job
        # eats the remaining outage, then runs cleanly.
        remaining = (BASELINE.end_s + 0.5 + DOWNTIME) - (first.end_s + 1.0)
        assert second.recovery_downtime_s == pytest.approx(remaining)
        assert second.duration_s == pytest.approx(
            BASELINE.duration_s + remaining, rel=1e-9
        )

    def test_crash_beyond_the_run_stays_pending(self):
        timeline = run(FaultPlan(
            master_crash_time=1e6, master_recovery="resume",
        ))
        assert timeline.master_crashes == 0
        assert timeline.recovery_mode == ""
        assert timeline.end_s == pytest.approx(BASELINE.end_s, rel=1e-12)

    def test_master_crash_happens_once_across_jobs(self):
        plan = FaultPlan(master_crash_time=MID_JOB, master_recovery="resume")
        faulty = FaultyCluster(make_cluster(4), plan)
        first = faulty.run_job(work())
        second = faulty.run_job(work())
        assert first.master_crashes == 1
        assert second.master_crashes == 0
        assert faulty.master.procfs.master_restarts == 1

    def test_reset_rearms_the_crash(self):
        plan = FaultPlan(master_crash_time=MID_JOB, master_recovery="restart")
        faulty = FaultyCluster(make_cluster(4), plan)
        first = faulty.run_job(work())
        faulty.reset()
        again = faulty.run_job(work())
        assert first.master_crashes == again.master_crashes == 1
        assert first.end_s == pytest.approx(again.end_s, rel=1e-12)

    def test_same_plan_is_exactly_reproducible(self):
        plan = FaultPlan(master_crash_time=MID_JOB, master_recovery="resume")
        a = run(plan)
        b = run(plan)
        assert a.end_s == b.end_s
        assert a.accounting() == b.accounting()


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("seed", SEEDS)
class TestMasterCrashChaosMatrix:
    """WordCount/Sort/PageRank × pinned seeds with a mid-run master crash.

    The seeds are pinned like the mixed-fault chaos matrix: rescheduling
    after a crash can occasionally *improve* a greedy schedule (Graham's
    anomalies), so the suite fixes schedules where the outage dominates.
    """

    def test_outputs_are_bit_identical_in_both_modes(self, name, seed):
        result = crash_chaos(name, seed)
        assert result.restart_identical
        assert result.resume_identical

    def test_the_master_crashed_exactly_once(self, name, seed):
        result = crash_chaos(name, seed)
        assert result.restart_accounting["master_crashes"] == 1
        assert result.resume_accounting["master_crashes"] == 1

    def test_resume_is_at_least_as_fast_as_restart(self, name, seed):
        result = crash_chaos(name, seed)
        assert result.resume_duration_s <= result.restart_duration_s
        assert result.recovery_savings_s >= 0

    def test_the_outage_never_speeds_the_run_up(self, name, seed):
        result = crash_chaos(name, seed)
        assert result.restart_duration_s >= result.baseline_duration_s
        assert result.resume_duration_s >= result.baseline_duration_s


class TestMasterCrashChaosProperties:
    def test_matrix_exercises_both_recovery_paths(self):
        results = [crash_chaos(n, s) for n in WORKLOADS for s in SEEDS]
        assert any(r.restart_accounting["jobs_restarted"] for r in results)
        assert any(r.resume_accounting["jobs_resumed"] for r in results)
        assert any(r.resume_accounting["maps_recovered"] for r in results)
        assert all(
            r.restart_accounting["recovery_downtime_s"] > 0 for r in results
        )


class TestNamespaceRecoveryUnderFaults:
    """The tentpole contract: replay(fsimage, edits) == the live namespace
    after arbitrary seeded fault schedules driven by real workloads."""

    @staticmethod
    def namespace_state(hdfs):
        return (
            {name: tuple(f.blocks) for name, f in hdfs.files.items()},
            hdfs._placement_cursor,
            hdfs.dead_nodes,
            hdfs.total_stored_bytes(),
        )

    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_namenode_recovers_exact_namespace_after_chaos(self, seed):
        plan = FaultPlan(
            map_failures=(0,),
            # Node crashes fire inside the map phase (ends ~0.21s here).
            node_crashes=(("slave2", 0.03 + 0.04 * seed),),
            shuffle_failures=((0, 1, 2),),
            seed=seed,
        )
        cluster = make_cluster(4, block_size=64 * 1024)
        faulty = FaultyCluster(cluster, plan)
        workload("Sort").run(scale=0.3, cluster=faulty)
        recovered = cluster.journal.recover()
        assert self.namespace_state(recovered) == self.namespace_state(cluster.hdfs)
        # The fault schedule actually dirtied the namespace.
        assert cluster.hdfs.dead_nodes == ("slave2",)
        assert cluster.master.procfs.journal_edits > 0

    def test_recovery_survives_a_master_crash_too(self):
        plan = FaultPlan(
            master_crash_time=MID_JOB,
            master_recovery="resume",
            node_crashes=(("slave3", 0.1),),
        )
        cluster = make_cluster(4, block_size=64 * 1024)
        faulty = FaultyCluster(cluster, plan)
        workload("WordCount").run(scale=0.3, cluster=faulty)
        recovered = cluster.journal.recover()
        assert self.namespace_state(recovered) == self.namespace_state(cluster.hdfs)
