#!/usr/bin/env python3
"""Fault tolerance: failures, stragglers and speculative execution.

The paper's cluster runs Hadoop 1.0.2, whose resilience mechanisms shape
every long job's runtime.  This example injects the two everyday
pathologies into a Sort run and shows what the jobtracker's counter-
measures buy:

* task failures → re-execution on another node (bounded damage),
* a straggling node → speculative backup attempts (bounded tail).

Run:  python examples/fault_tolerance.py
"""

from repro.cluster import FaultPlan, FaultyCluster, make_cluster
from repro.workloads import workload


def sort_work():
    """Build Sort's JobWork once (same functional execution every time)."""
    cluster = make_cluster(4, block_size=64 * 1024)
    run = workload("Sort").run(scale=1.0, cluster=cluster)
    return run.job_results[0].work


def simulate(plan: FaultPlan, work):
    cluster = make_cluster(4, block_size=64 * 1024)
    return FaultyCluster(cluster, plan).run_job(work)


def main() -> None:
    work = sort_work()
    print(f"Sort: {len(work.maps)} map tasks, {len(work.reduces)} reduce tasks\n")

    scenarios = [
        ("healthy cluster", FaultPlan()),
        ("10% map failures", FaultPlan.random_plan(len(work.maps), failure_rate=0.10, seed=3)),
        ("one 8x straggler, no speculation",
         FaultPlan(straggler_nodes=("slave2",), straggler_factor=8.0,
                   speculative_execution=False)),
        ("one 8x straggler, with speculation",
         FaultPlan(straggler_nodes=("slave2",), straggler_factor=8.0,
                   speculative_execution=True)),
    ]

    baseline = None
    print(f"{'scenario':<38s}{'duration':>10s}{'vs healthy':>12s}"
          f"{'failures':>10s}{'backups':>9s}{'wasted':>9s}")
    print("-" * 88)
    for label, plan in scenarios:
        result = simulate(plan, work)
        if baseline is None:
            baseline = result.timeline.duration_s
        print(f"{label:<38s}{result.timeline.duration_s:>9.2f}s"
              f"{result.timeline.duration_s / baseline:>11.2f}x"
              f"{result.failed_attempts:>10d}{result.speculative_attempts:>9d}"
              f"{result.wasted_seconds:>8.2f}s")
    print("\nreading: failures cost bounded re-execution; speculation trades"
          "\nwasted duplicate work for a much shorter straggler tail.")


if __name__ == "__main__":
    main()
