"""Tests for the MPI workload programs: results must equal the
MapReduce twins' results (same algorithm, different execution model)."""

import collections

import pytest

from repro.mpi import MpiRuntime, mpi_kmeans, mpi_pagerank, mpi_wordcount
from repro.workloads import datagen, workload
from repro.workloads.kmeans import squared_distance


class TestMpiWordCount:
    def test_matches_counter(self):
        docs = datagen.generate_documents(200)
        run = mpi_wordcount(MpiRuntime(4), docs)
        expected = collections.Counter(w for _, text in docs for w in text.split())
        assert run.output == dict(expected)

    def test_matches_mapreduce_twin(self):
        scale = 0.2
        mr = workload("WordCount").run(scale=scale)
        docs = datagen.generate_documents(int(1200 * scale))
        mpi = mpi_wordcount(MpiRuntime(8), docs)
        assert mpi.output == mr.output

    def test_single_rank(self):
        docs = datagen.generate_documents(20)
        run = mpi_wordcount(MpiRuntime(1), docs)
        expected = collections.Counter(w for _, t in docs for w in t.split())
        assert run.output == dict(expected)

    def test_elapsed_and_stats_positive(self):
        run = mpi_wordcount(MpiRuntime(4), datagen.generate_documents(100))
        assert run.elapsed_s > 0
        assert run.stats_bytes > 0


class TestMpiKMeans:
    def test_recovers_centers(self):
        points, true_centers = datagen.generate_cluster_points(1500, num_clusters=4)
        run = mpi_kmeans(MpiRuntime(4), points, k=4)
        for center in true_centers:
            best = min(squared_distance(center, c) ** 0.5 for c in run.output)
            assert best < 1.0

    def test_rank_count_does_not_change_result(self):
        points, _ = datagen.generate_cluster_points(800, num_clusters=3)
        a = mpi_kmeans(MpiRuntime(2), points, k=3)
        b = mpi_kmeans(MpiRuntime(6), points, k=3)
        for ca, cb in zip(a.output, b.output):
            assert squared_distance(ca, cb) < 1e-12

    def test_rejects_bad_k(self):
        points, _ = datagen.generate_cluster_points(100)
        with pytest.raises(ValueError):
            mpi_kmeans(MpiRuntime(2), points, k=0)

    def test_iteration_count_reported(self):
        points, _ = datagen.generate_cluster_points(500, num_clusters=3)
        run = mpi_kmeans(MpiRuntime(4), points, k=3)
        assert 1 <= run.iterations <= 10


class TestMpiPageRank:
    def test_ranks_sum_to_one(self):
        graph = datagen.generate_web_graph(400)
        run = mpi_pagerank(MpiRuntime(4), graph, iterations=6)
        assert sum(run.output.values()) == pytest.approx(1.0, abs=1e-9)

    def test_matches_mapreduce_twin_ordering(self):
        scale = 0.2
        mr = workload("PageRank").run(scale=scale)
        graph = datagen.generate_web_graph(int(2000 * scale))
        mpi = mpi_pagerank(MpiRuntime(4), graph, iterations=8)
        top_mr = sorted(mr.output, key=mr.output.get, reverse=True)[:10]
        top_mpi = sorted(mpi.output, key=mpi.output.get, reverse=True)[:10]
        assert len(set(top_mr) & set(top_mpi)) >= 8

    def test_rank_count_invariant(self):
        graph = datagen.generate_web_graph(300)
        a = mpi_pagerank(MpiRuntime(2), graph, iterations=5)
        b = mpi_pagerank(MpiRuntime(5), graph, iterations=5)
        for page in a.output:
            assert a.output[page] == pytest.approx(b.output[page], abs=1e-12)


class TestProgrammingModelComparison:
    def test_mpi_iteration_avoids_materialisation(self):
        """The §V observation: for iterative workloads, MPI's in-memory
        exchange beats MapReduce's per-iteration disk materialisation."""
        from repro.cluster import make_cluster

        scale = 0.3
        graph = datagen.generate_web_graph(int(2000 * scale))
        cluster = make_cluster(4, block_size=16 * 1024)
        mr = workload("PageRank").run(scale=scale, cluster=cluster)
        runtime = MpiRuntime(8, nodes=make_cluster(4).slaves)
        mpi = mpi_pagerank(runtime, graph, iterations=8)
        assert mpi.elapsed_s < mr.duration_s
