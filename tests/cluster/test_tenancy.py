"""Tests for trace-driven multi-tenant workload mixes.

Pins the PR's acceptance criteria: on a heavy-tailed trace (one Sort
elephant, four interactive mice) the fair scheduler strictly improves
both the small-job mean slowdown *and* the Jain fairness index over
FIFO; and a chaos-injected mix — node crash plus network partition mid
trace — completes with every job's output bit-identical to the
fault-free run.
"""

import json
import math

import pytest

from repro.cluster.faults import FaultPlan
from repro.cluster.scheduler import (
    CapacityScheduler,
    FairScheduler,
    FifoScheduler,
)
from repro.cluster.tenancy import (
    TraceJob,
    WorkloadTrace,
    characterize_colocation,
    default_pools,
    default_queues,
    generate_trace,
    run_mix,
)

SMALL = dict(num_slaves=2, map_slots=4, reduce_slots=2, block_size=64 * 1024)


def pinned_trace() -> WorkloadTrace:
    """One Sort elephant, then four interactive mice arriving during its
    long map phase — the regime the fair scheduler was built for."""
    jobs = (
        TraceJob(0, "Sort", 0.3, 0.0, "bo", "batch", "large"),
        TraceJob(1, "Grep", 0.05, 0.02, "ada", "interactive", "small"),
        TraceJob(2, "WordCount", 0.05, 0.04, "carol", "interactive", "small"),
        TraceJob(3, "Grep", 0.05, 0.06, "ada", "interactive", "small"),
        TraceJob(4, "WordCount", 0.05, 0.08, "deepak", "interactive", "small"),
    )
    return WorkloadTrace(jobs, seed=0, arrival_rate_per_s=0.0)


# -- trace generation ----------------------------------------------------------


class TestGenerateTrace:
    def test_same_seed_same_trace(self):
        assert generate_trace(seed=7) == generate_trace(seed=7)

    def test_different_seed_different_trace(self):
        assert generate_trace(seed=7) != generate_trace(seed=8)

    def test_arrivals_are_sorted_and_non_negative(self):
        trace = generate_trace(seed=1, num_jobs=20, arrival_rate_per_s=3.0)
        arrivals = [j.arrival_s for j in trace.jobs]
        assert arrivals == sorted(arrivals)
        assert all(a >= 0 for a in arrivals)

    def test_mix_is_heavy_tailed(self):
        """Small jobs dominate the count, as in the production traces."""
        trace = generate_trace(seed=0, num_jobs=200, arrival_rate_per_s=5.0)
        by_class = {
            name: sum(1 for j in trace.jobs if j.size_class == name)
            for name in ("small", "medium", "large")
        }
        assert by_class["small"] > by_class["medium"] > by_class["large"]
        assert by_class["small"] >= 0.55 * len(trace.jobs)

    def test_trace_job_validation(self):
        with pytest.raises(ValueError):
            TraceJob(0, "NotAWorkload", 0.1, 0.0, "u", "p", "small")
        with pytest.raises(ValueError):
            TraceJob(0, "Grep", 0.0, 0.0, "u", "p", "small")
        with pytest.raises(ValueError):
            TraceJob(0, "Grep", 0.1, -1.0, "u", "p", "small")

    def test_trace_to_dict_round_trips_through_json(self):
        trace = generate_trace(seed=2, num_jobs=5)
        payload = json.loads(json.dumps(trace.to_dict()))
        assert len(payload["jobs"]) == 5
        assert payload["seed"] == 2

    def test_trace_json_round_trips_exactly(self):
        for trace in (generate_trace(seed=2, num_jobs=8), pinned_trace()):
            back = WorkloadTrace.from_json(trace.to_json())
            assert back.to_dict() == trace.to_dict()
            assert back.seed == trace.seed
            assert back.arrival_rate_per_s == trace.arrival_rate_per_s

    def test_trace_from_json_rejects_garbage(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            WorkloadTrace.from_json("{nope")

    def test_trace_from_dict_validates_jobs(self):
        data = json.loads(pinned_trace().to_json())
        data["jobs"][0]["workload"] = "NotAWorkload"
        with pytest.raises(ValueError):
            WorkloadTrace.from_dict(data)
        data = json.loads(pinned_trace().to_json())
        data["jobs"][0]["extra"] = 1
        with pytest.raises(ValueError, match="unknown"):
            WorkloadTrace.from_dict(data)
        data = json.loads(pinned_trace().to_json())
        del data["jobs"][0]["scale"]
        with pytest.raises(ValueError, match="missing"):
            WorkloadTrace.from_dict(data)
        data = json.loads(pinned_trace().to_json())
        data["jobs"][0]["scale"] = True  # bool is not a number
        with pytest.raises(ValueError):
            WorkloadTrace.from_dict(data)

    def test_trace_from_dict_rejects_unsorted_arrivals(self):
        data = json.loads(pinned_trace().to_json())
        data["jobs"][0]["arrival_s"] = 99.0
        with pytest.raises(ValueError):
            WorkloadTrace.from_dict(data)

    def test_default_pools_and_queues_cover_the_trace(self):
        trace = generate_trace(seed=0, num_jobs=30)
        assert {p.name for p in default_pools(trace)} == set(trace.pools())
        queues = default_queues(trace)
        assert {q.name for q in queues} == set(trace.pools())
        assert sum(q.capacity for q in queues) == pytest.approx(1.0)


# -- the pinned acceptance trace -----------------------------------------------


class TestFairBeatsFifo:
    def test_fair_strictly_improves_small_job_slowdown_and_jain(self):
        trace = pinned_trace()
        fifo = run_mix(trace, FifoScheduler(), **SMALL)
        fair = run_mix(trace, FairScheduler(pools=default_pools(trace)), **SMALL)

        assert fair.mean_slowdown(size_class="small") < fifo.mean_slowdown(
            size_class="small"
        )
        assert fair.jain_fairness() > fifo.jain_fairness()
        # scheduling policy must never change what the jobs compute
        assert fair.outputs == fifo.outputs

        # the gap is large, not a rounding artifact: FIFO makes the mice
        # wait out the elephant's map waves (total time >> ideal, i.e.
        # slowdown near 10x and up), fair sharing keeps them interactive
        assert fifo.mean_slowdown(size_class="small") > 5.0
        assert fair.mean_slowdown(size_class="small") < 5.0

    def test_the_elephant_is_not_starved_by_fair_sharing(self):
        trace = pinned_trace()
        fair = run_mix(trace, FairScheduler(pools=default_pools(trace)), **SMALL)
        (large,) = [r for r in fair.reports if r.trace_job.size_class == "large"]
        assert large.slowdown < 3.0

    def test_capacity_scheduler_completes_the_same_trace(self):
        trace = pinned_trace()
        fifo = run_mix(trace, FifoScheduler(), **SMALL)
        cap = run_mix(trace, CapacityScheduler(queues=default_queues(trace)), **SMALL)
        assert cap.outputs == fifo.outputs
        assert cap.makespan_s > 0

    def test_mix_result_accessors(self):
        mix = run_mix(pinned_trace(), FifoScheduler(), **SMALL)
        assert mix.mean_wait(pool="interactive") >= 0
        assert 0 < mix.jain_fairness(by="user") <= 1
        assert 0 < mix.jain_fairness(by="pool") <= 1
        with pytest.raises(ValueError):
            mix.jain_fairness(by="moon-phase")
        # An empty selection is an answerable question, not an error: it
        # yields NaN so report generation survives sparse traces.
        assert math.isnan(mix.mean_slowdown(pool="nonexistent"))
        assert math.isnan(mix.mean_wait(pool="nonexistent"))
        assert math.isnan(mix.mean_slowdown(size_class="huge", user="nobody"))
        assert set(mix.by_pool()) == {"batch", "interactive"}
        payload = json.loads(json.dumps(mix.to_dict()))
        assert payload["scheduler"] == "fifo"
        assert len(payload["jobs"]) == 5

    def test_mix_is_deterministic(self):
        a = run_mix(pinned_trace(), FifoScheduler(), **SMALL)
        b = run_mix(pinned_trace(), FifoScheduler(), **SMALL)
        assert a.to_dict() == b.to_dict()
        assert a.outputs == b.outputs

    def test_solo_shadow_runs_are_memoized(self, monkeypatch):
        """Identical (workload, scale) trace jobs share one shadow run."""
        import repro.workloads.base as base

        real = base.workload
        calls = []

        def counting(name):
            calls.append(name)
            return real(name)

        monkeypatch.setattr(base, "workload", counting)
        trace = pinned_trace()
        distinct = {(t.workload, t.scale) for t in trace.jobs}
        assert len(distinct) < len(trace.jobs)  # trace repeats a mouse
        mix = run_mix(trace, FifoScheduler(), **SMALL)
        assert len(calls) == len(distinct)
        # Memoized ideals/outputs are per trace job, not per distinct key.
        assert set(mix.outputs) == {t.index for t in trace.jobs}
        assert all(r.ideal_s > 0 for r in mix.reports)


# -- chaos during a multi-tenant mix -------------------------------------------


class TestChaosMix:
    def fault_free_outputs(self):
        return run_mix(pinned_trace(), FifoScheduler(), **SMALL).outputs

    @pytest.mark.parametrize(
        "scheduler_factory",
        [
            lambda trace: FifoScheduler(),
            lambda trace: FairScheduler(pools=default_pools(trace)),
        ],
        ids=["fifo", "fair"],
    )
    def test_crash_plus_partition_preserves_every_output(self, scheduler_factory):
        trace = pinned_trace()
        plan = FaultPlan(
            node_crashes=(("slave2", 0.15),),
            partitions=(("slave1", 0.1, 0.6),),
        )
        chaos = run_mix(trace, scheduler_factory(trace), plan=plan, **SMALL)
        assert chaos.outputs == self.fault_free_outputs()
        accounting = chaos.outcome.fault_accounting
        assert accounting.nodes_crashed == ("slave2",)
        assert accounting.partition_windows == 1
        assert accounting.killed_attempts > 0
        assert accounting.maps_reexecuted > 0
        assert accounting.wasted_task_seconds > 0

    def test_long_partition_fences_zombie_attempts(self):
        trace = pinned_trace()
        plan = FaultPlan(partitions=(("slave1", 0.1, 1.0),))
        chaos = run_mix(trace, FifoScheduler(), plan=plan, **SMALL)
        assert chaos.outputs == self.fault_free_outputs()
        accounting = chaos.outcome.fault_accounting
        assert accounting.zombies_fenced > 0

    def test_unsupported_fault_classes_are_rejected(self):
        with pytest.raises(ValueError, match="node_crashes, partitions, rack"):
            run_mix(
                pinned_trace(),
                FifoScheduler(),
                plan=FaultPlan(map_failure_rate=0.5),
                **SMALL,
            )

    def test_unknown_crash_node_rejected(self):
        with pytest.raises(ValueError):
            run_mix(
                pinned_trace(),
                FifoScheduler(),
                plan=FaultPlan(node_crashes=(("slave9", 0.1),)),
                **SMALL,
            )


# -- shared-LLC co-location ----------------------------------------------------


class TestColocation:
    def test_busiest_instant_is_characterized(self):
        trace = generate_trace(seed=0, num_jobs=6, arrival_rate_per_s=20.0)
        mix = run_mix(trace, FifoScheduler(), **SMALL)
        report = characterize_colocation(mix, instructions=6000)
        assert report is not None
        assert len(report.workloads) >= 2
        assert set(report.slowdowns) == set(report.workloads)
        assert all(s >= 1.0 for s in report.slowdowns.values())
        assert all(ipc > 0 for ipc in report.solo_ipc.values())
        worst_name, worst_slowdown = report.worst()
        assert worst_name in report.workloads
        assert worst_slowdown == max(report.slowdowns.values())
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["node"] == report.node

    def test_single_job_mix_has_no_colocation(self):
        trace = WorkloadTrace(
            (TraceJob(0, "Grep", 0.05, 0.0, "ada", "interactive", "small"),),
            seed=0,
            arrival_rate_per_s=0.0,
        )
        mix = run_mix(trace, FifoScheduler(), **SMALL)
        assert characterize_colocation(mix, instructions=6000) is None
