#!/usr/bin/env python3
"""Quickstart: run one data-analysis workload end to end.

This script shows the two halves of the reproduction working together:

1. the *functional* half — WordCount actually executes on the MapReduce
   engine over a simulated 4-slave Hadoop cluster, producing real word
   counts, Hadoop-style job counters and a cluster timeline;
2. the *architectural* half — the same workload's instruction stream is
   characterized on the simulated Xeon E5645, producing the hardware
   performance-counter metrics of the paper's Figures 3-12.

Run:  python examples/quickstart.py
"""

from repro.cluster import make_cluster
from repro.core import DCBench, characterize
from repro.workloads import workload


def main() -> None:
    # ---- functional execution on the cluster model ----
    cluster = make_cluster(num_slaves=4, block_size=64 * 1024)
    wordcount = workload("WordCount")
    run = wordcount.run(scale=0.5, cluster=cluster)

    print("== WordCount on a 4-slave cluster ==")
    top = sorted(run.output.items(), key=lambda kv: -kv[1])[:5]
    print("top words:", ", ".join(f"{w}={n}" for w, n in top))
    print(f"documents processed : {run.counters.map_input_records}")
    print(f"map output records  : {run.counters.map_output_records}")
    print(f"combiner reduction  : {run.counters.combine_input_records} -> "
          f"{run.counters.combine_output_records}")
    print(f"shuffled bytes      : {run.counters.shuffle_bytes}")
    print(f"simulated duration  : {run.duration_s:.3f}s over {len(run.timelines)} job(s)")
    print(f"disk writes per sec : {run.disk_writes_per_second():.1f}")

    # ---- micro-architectural characterization ----
    suite = DCBench.default()
    result = characterize(suite.entry("WordCount"))
    m = result.metrics
    print("\n== WordCount on the simulated Xeon E5645 ==")
    print(f"IPC                      : {m.ipc:.2f}")
    print(f"kernel instructions      : {m.kernel_instruction_fraction:.1%}")
    print(f"L1I misses / K-instr     : {m.l1i_mpki:.1f}")
    print(f"L2 misses / K-instr      : {m.l2_mpki:.1f}")
    print(f"L3-hit ratio of L2 misses: {m.l3_hit_ratio_of_l2_misses:.0%}")
    print(f"branch mispredictions    : {m.branch_misprediction_ratio:.2%}")
    print("stall breakdown          :",
          ", ".join(f"{k}={v:.0%}" for k, v in m.stall_breakdown.items()))


if __name__ == "__main__":
    main()
