"""Cluster node: CPU slots + disk + NIC + simulated /proc.

Matches the paper's slave configuration: each slave runs 24 map task slots
and 12 reduce task slots (Section III-B).  CPU work is expressed in
"normalised CPU seconds"; a node executes one task's CPU work per slot
concurrently (the dual hex-core Xeons give the cluster far more hardware
threads than a slot uses, so slots — not cores — are the concurrency
limit, as in the real deployment).
"""

from __future__ import annotations

from repro.cluster.disk import Disk
from repro.cluster.network import Nic
from repro.perf.procfs import ProcFs


class Node:
    """One machine in the cluster."""

    def __init__(
        self,
        name: str,
        map_slots: int = 24,
        reduce_slots: int = 12,
        cpu_speed: float = 1.0,
        disk_read_bw: float = 110e6,
        disk_write_bw: float = 95e6,
        nic_bandwidth: float = 125e6,
    ) -> None:
        if map_slots <= 0 or reduce_slots <= 0:
            raise ValueError("slot counts must be positive")
        if cpu_speed <= 0:
            raise ValueError("cpu speed must be positive")
        self.name = name
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots
        self.cpu_speed = cpu_speed
        #: fail-slow multiplier on CPU time (thermal throttling, a core
        #: pinned at its lowest P-state); 1.0 is a healthy node and
        #: charges bit-identical durations.
        self.slow_factor = 1.0
        self.procfs = ProcFs(node_name=name)
        self.disk = Disk(self.procfs, read_bw=disk_read_bw, write_bw=disk_write_bw)
        self.nic = Nic(self.procfs, bandwidth=nic_bandwidth)
        #: next-free times for each map/reduce slot (discrete-event state)
        self.map_slot_free = [0.0] * map_slots
        self.reduce_slot_free = [0.0] * reduce_slots

    def cpu_time(self, cpu_seconds: float) -> float:
        """Wall time to execute *cpu_seconds* of normalised work."""
        if cpu_seconds < 0:
            raise ValueError("cpu work must be non-negative")
        wall = cpu_seconds / self.cpu_speed
        if self.slow_factor != 1.0:
            wall *= self.slow_factor
        return wall

    def earliest_map_slot(self) -> int:
        return min(range(self.map_slots), key=lambda i: self.map_slot_free[i])

    def earliest_reduce_slot(self) -> int:
        return min(range(self.reduce_slots), key=lambda i: self.reduce_slot_free[i])

    def reset(self) -> None:
        """Clear all timing state (between jobs/experiments)."""
        self.map_slot_free = [0.0] * self.map_slots
        self.reduce_slot_free = [0.0] * self.reduce_slots
        self.disk.reset()
        self.nic.reset()
        self.procfs = ProcFs(node_name=self.name)
        self.disk.procfs = self.procfs
        self.nic.procfs = self.procfs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} map_slots={self.map_slots} reduce_slots={self.reduce_slots}>"
