"""Shared fixtures for the figure/table regeneration harness.

The full-suite characterization (26 workloads × 200k micro-ops on the
scaled Table III machine) is computed once per session and shared by all
figure benchmarks; each benchmark then regenerates and prints its
figure's series and asserts the paper's shape.

The dataset is produced through the fast-path layer: the batched engine
(bit-identical to the reference interpreter — see docs/performance.md),
``workers=auto`` process fan-out, and the persistent ``.repro-cache``
result cache, so a repeat ``pytest benchmarks/`` session completes in
seconds.  Two options control it:

* ``--sim-engine=reference`` forces the per-μop interpreter (CI's
  equivalence job uses this to cross-check the dataset end to end);
* ``--no-sim-cache`` bypasses the persistent cache for this session.
"""

from __future__ import annotations

import pytest

from repro.core.characterize import characterize_suite
from repro.core.simcache import SimCache
from repro.core.suite import DCBench


def pytest_addoption(parser):
    group = parser.getgroup("repro")
    group.addoption(
        "--sim-engine",
        choices=("fast", "reference"),
        default="fast",
        help="simulation engine for the session dataset (bit-identical)",
    )
    group.addoption(
        "--no-sim-cache",
        action="store_true",
        default=False,
        help="bypass the persistent .repro-cache simulation result cache",
    )


def pytest_configure(config):
    # Make the harness usable both as `pytest benchmarks/` and with
    # `--benchmark-only`; nothing to do, marker docs only.
    config.addinivalue_line("markers", "figure(num): regenerates one paper figure")


@pytest.fixture(scope="session")
def suite():
    return DCBench.default()


@pytest.fixture(scope="session")
def sim_cache(request):
    """Session cache handle (None when --no-sim-cache is given)."""
    if request.config.getoption("--no-sim-cache"):
        return None
    return SimCache()


@pytest.fixture(scope="session")
def suite_chars(suite, sim_cache, request):
    """Characterization of all 26 workloads (the Figures 3–12 dataset)."""
    return characterize_suite(
        suite,
        engine=request.config.getoption("--sim-engine"),
        workers="auto",
        cache=sim_cache,
    )


@pytest.fixture(scope="session")
def chars_by_name(suite_chars):
    return {c.name: c for c in suite_chars}


@pytest.fixture(scope="session")
def da_chars(suite_chars):
    return [c for c in suite_chars if c.group == "data-analysis"]


@pytest.fixture(scope="session")
def service_chars(suite_chars):
    return [c for c in suite_chars if c.group == "service"]


@pytest.fixture(scope="session")
def hpcc_chars(suite_chars):
    return [c for c in suite_chars if c.group == "hpc"]


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark (the harness runs real
    experiments; repetition would only re-measure identical work)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
