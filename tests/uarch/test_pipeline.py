"""Tests for the out-of-order core timing model and its counters."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.config import CoreConfig, MachineConfig, scaled_machine
from repro.uarch.isa import MicroOp, OpClass
from repro.uarch.pipeline import Core, SimulationResult, simulate
from repro.uarch.trace import MemoryRegion, SyntheticTrace, TraceSpec


SMALL_MACHINE = scaled_machine(8)


def run_spec(spec, machine=SMALL_MACHINE, **kw):
    return Core(machine).run(SyntheticTrace(spec), **kw)


def alu_trace(n, pc_base=0x400000):
    """Independent ALU ops looping over a cache-resident 1 KB code region —
    the ideal-IPC trace."""
    return [MicroOp(OpClass.ALU, pc_base + 4 * (i % 256)) for i in range(n)]


class TestCoreBasics:
    def test_empty_trace(self):
        result = Core(SMALL_MACHINE).run([], warmup=0)
        assert result.instructions == 0
        assert result.ipc() == 0.0

    def test_ideal_alu_ipc_near_width(self):
        result = Core(SMALL_MACHINE).run(alu_trace(8000), warmup=0)
        # 4-wide machine on independent single-cycle ops.
        assert result.ipc() > 3.0

    def test_ipc_never_exceeds_retire_width(self):
        result = Core(SMALL_MACHINE).run(alu_trace(8000), warmup=0)
        assert result.ipc() <= SMALL_MACHINE.core.retire_width

    def test_serial_dependency_chain_limits_ipc(self):
        ops = [MicroOp(OpClass.ALU, 0x400000 + 4 * i, dep1=1) for i in range(4000)]
        result = Core(SMALL_MACHINE).run(ops, warmup=0)
        assert result.ipc() <= 1.05

    def test_div_chain_is_slow(self):
        ops = [MicroOp(OpClass.DIV, 0x400000 + 4 * i, dep1=1) for i in range(500)]
        result = Core(SMALL_MACHINE).run(ops, warmup=0)
        assert result.ipc() < 0.1

    def test_instruction_count(self):
        result = Core(SMALL_MACHINE).run(alu_trace(1234), warmup=0)
        assert result.instructions == 1234

    def test_load_store_counters(self):
        ops = [
            MicroOp(OpClass.LOAD, 0x400000, addr=0x10000000),
            MicroOp(OpClass.STORE, 0x400004, addr=0x10000040),
            MicroOp(OpClass.ALU, 0x400008),
        ]
        result = Core(SMALL_MACHINE).run(ops, warmup=0)
        assert result.loads == 1
        assert result.stores == 1

    def test_kernel_instructions_counted(self):
        ops = [MicroOp(OpClass.ALU, 0x400000, kernel=(i % 4 == 0)) for i in range(400)]
        result = Core(SMALL_MACHINE).run(ops, warmup=0)
        assert result.kernel_fraction() == pytest.approx(0.25)

    def test_simulate_accepts_spec(self):
        result = simulate(TraceSpec("s", 2000), SMALL_MACHINE)
        assert result.instructions > 0
        assert result.name == "s"

    def test_simulate_rejects_garbage(self):
        with pytest.raises(TypeError):
            simulate(42)


class TestWarmup:
    def test_warmup_excluded_from_instruction_count(self):
        spec = TraceSpec("w", 10_000)
        result = run_spec(spec)  # default warmup: 20%
        assert result.instructions == 8000
        assert result.extra["warmup_instructions"] == 2000

    def test_explicit_warmup(self):
        spec = TraceSpec("w", 10_000)
        result = run_spec(spec, warmup=5000)
        assert result.instructions == 5000

    def test_zero_warmup(self):
        spec = TraceSpec("w", 5000)
        result = run_spec(spec, warmup=0)
        assert result.instructions == 5000

    def test_warmup_reduces_cold_start_miss_rates(self):
        spec = TraceSpec(
            "w",
            30_000,
            regions=(MemoryRegion("hot", 64 * 1024, pattern="random"),),
        )
        cold = run_spec(spec, warmup=0)
        warm = run_spec(spec, warmup=15_000)
        assert warm.l2_mpki() <= cold.l2_mpki()

    def test_counters_are_deltas_not_totals(self):
        spec = TraceSpec("w", 10_000)
        full = run_spec(spec, warmup=0)
        measured = run_spec(spec, warmup=5000)
        assert measured.branches < full.branches
        assert measured.l1i_accesses < full.l1i_accesses


class TestCacheCounters:
    def test_small_code_footprint_low_l1i_mpki(self):
        spec = TraceSpec("small-code", 40_000, code_footprint=2048, kernel_fraction=0.0)
        result = run_spec(spec)
        assert result.l1i_mpki() < 2.0

    def test_large_code_footprint_high_l1i_mpki(self):
        small = run_spec(TraceSpec("s", 40_000, code_footprint=2048))
        big = run_spec(
            TraceSpec("b", 40_000, code_footprint=1024 * 1024, hot_code_fraction=0.5)
        )
        assert big.l1i_mpki() > 5 * max(small.l1i_mpki(), 0.1)

    def test_cache_resident_data_low_l2_mpki(self):
        spec = TraceSpec(
            "resident",
            40_000,
            code_footprint=2048,
            kernel_fraction=0.0,
            regions=(MemoryRegion("tiny", 2048, pattern="random"),),
        )
        result = run_spec(spec)
        assert result.l2_mpki() < 1.0

    def test_huge_random_data_high_l2_mpki(self):
        spec = TraceSpec(
            "big", 40_000, regions=(MemoryRegion("huge", 64 << 20, pattern="random", burst=1),)
        )
        result = run_spec(spec)
        assert result.l2_mpki() > 30

    def test_l3_ratio_between_zero_and_one(self):
        spec = TraceSpec(
            "r", 30_000, regions=(MemoryRegion("m", 4 << 20, pattern="random"),)
        )
        result = run_spec(spec)
        assert 0.0 <= result.l3_hit_ratio_of_l2_misses() <= 1.0

    def test_l3_captures_l2_overflow_working_set(self):
        # Working set far beyond L2 (32 KB scaled) but inside L3 (1.5 MB).
        spec = TraceSpec(
            "fit-l3",
            200_000,
            regions=(MemoryRegion("ws", 512 * 1024, pattern="random"),),
        )
        result = run_spec(spec, warmup=100_000)
        assert result.l2_mpki() > 1.0
        assert result.l3_hit_ratio_of_l2_misses() > 0.8

    def test_l2_misses_include_instruction_side(self):
        """The unified L2 serves code misses too (paper's L2 counters)."""
        spec = TraceSpec(
            "codeheavy",
            40_000,
            code_footprint=1024 * 1024,
            hot_code_fraction=0.9,
            regions=(MemoryRegion("tiny", 1024),),
        )
        result = run_spec(spec)
        assert result.l1i_misses > 0
        assert result.l2_accesses >= result.l1i_misses


class TestTlbCounters:
    def test_compact_data_no_walks(self):
        spec = TraceSpec("c", 30_000, regions=(MemoryRegion("one-page", 4096),))
        result = run_spec(spec)
        assert result.dtlb_walks_pki() < 0.5

    def test_sprawling_data_walks(self):
        spec = TraceSpec(
            "s", 30_000, regions=(MemoryRegion("sprawl", 256 << 20, pattern="random", burst=1),)
        )
        result = run_spec(spec)
        assert result.dtlb_walks_pki() > 10

    def test_itlb_walks_grow_with_code_footprint(self):
        small = run_spec(TraceSpec("s", 40_000, code_footprint=4096))
        big = run_spec(
            TraceSpec("b", 40_000, code_footprint=2 << 20, hot_code_fraction=0.6)
        )
        assert big.itlb_walks_pki() > small.itlb_walks_pki()


class TestStallAccounting:
    def test_breakdown_normalised(self):
        result = run_spec(TraceSpec("n", 30_000))
        breakdown = result.stall_breakdown()
        assert set(breakdown) == {"fetch", "rat", "load", "rs_full", "store", "rob_full"}
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_breakdown_all_zero_when_no_stalls(self):
        result = SimulationResult("empty", "m")
        assert sum(result.stall_breakdown().values()) == 0.0

    def test_frontend_plus_backend_shares_sum_to_one(self):
        result = run_spec(TraceSpec("n", 30_000))
        assert result.frontend_stall_share() + result.backend_stall_share() == pytest.approx(1.0)

    def test_memory_bound_trace_stalls_in_ooo_part(self):
        spec = TraceSpec(
            "mem",
            60_000,
            code_footprint=4096,
            regions=(MemoryRegion("big", 64 << 20, pattern="random", burst=2),),
            dep_mean=3.0,
            dep_density=0.8,
        )
        result = run_spec(spec)
        assert result.backend_stall_share() > 0.5

    def test_code_bound_trace_stalls_in_frontend(self):
        spec = TraceSpec(
            "code",
            60_000,
            code_footprint=4 << 20,
            hot_code_fraction=0.5,
            call_fraction=0.3,
            regions=(MemoryRegion("tiny", 4096),),
            partial_register_ratio=0.3,
            dep_density=0.2,
        )
        result = run_spec(spec)
        assert result.frontend_stall_share() > 0.5

    def test_rat_conflicts_charged(self):
        quiet = run_spec(TraceSpec("q", 30_000, partial_register_ratio=0.0))
        noisy = run_spec(TraceSpec("n", 30_000, partial_register_ratio=0.5))
        assert quiet.rat_stall_cycles == 0
        assert noisy.rat_stall_cycles > 0

    def test_rat_conflicts_lower_ipc(self):
        quiet = run_spec(TraceSpec("q", 30_000, partial_register_ratio=0.0))
        noisy = run_spec(TraceSpec("n", 30_000, partial_register_ratio=0.6))
        assert noisy.ipc() < quiet.ipc()


class TestBranchCounters:
    def test_regular_branches_rarely_mispredict(self):
        spec = TraceSpec(
            "reg", 60_000, branch_regularity=1.0, loop_branch_fraction=0.9,
            mean_trip_count=64, call_fraction=0.02, code_footprint=8192,
        )
        result = run_spec(spec)
        assert result.branch_misprediction_ratio() < 0.03

    def test_irregular_branches_mispredict_more(self):
        regular = run_spec(TraceSpec("r", 40_000, branch_regularity=0.98))
        irregular = run_spec(TraceSpec("i", 40_000, branch_regularity=0.5))
        assert irregular.branch_misprediction_ratio() > regular.branch_misprediction_ratio()

    def test_mispredictions_cost_cycles(self):
        regular = run_spec(TraceSpec("r", 40_000, branch_regularity=1.0))
        irregular = run_spec(TraceSpec("i", 40_000, branch_regularity=0.4))
        assert irregular.ipc() < regular.ipc()

    def test_branches_counted(self):
        result = run_spec(TraceSpec("b", 30_000, mean_block_len=6.0))
        # ~1 branch per 6-op block over the 24k measured instructions.
        assert result.branches > 30_000 * 0.8 / 6.0 * 0.85


class TestBandwidthModel:
    def test_streaming_is_bandwidth_bound(self):
        spec = TraceSpec(
            "stream",
            60_000,
            code_footprint=4096,
            regions=(MemoryRegion("s", 256 << 20, pattern="sequential"),),
            load_fraction=0.35,
            store_fraction=0.15,
            dep_density=0.3,
        )
        machine_slow = MachineConfig(
            l1i=SMALL_MACHINE.l1i, l1d=SMALL_MACHINE.l1d, l2=SMALL_MACHINE.l2,
            l3=SMALL_MACHINE.l3, itlb=SMALL_MACHINE.itlb, dtlb=SMALL_MACHINE.dtlb,
            l2tlb=SMALL_MACHINE.l2tlb, dram_cycles_per_line=60,
        )
        machine_fast = MachineConfig(
            l1i=SMALL_MACHINE.l1i, l1d=SMALL_MACHINE.l1d, l2=SMALL_MACHINE.l2,
            l3=SMALL_MACHINE.l3, itlb=SMALL_MACHINE.itlb, dtlb=SMALL_MACHINE.dtlb,
            l2tlb=SMALL_MACHINE.l2tlb, dram_cycles_per_line=4,
        )
        slow = Core(machine_slow).run(SyntheticTrace(spec))
        fast = Core(machine_fast).run(SyntheticTrace(spec))
        assert fast.ipc() > 1.5 * slow.ipc()

    def test_dram_transfers_reported(self):
        spec = TraceSpec(
            "t", 30_000, regions=(MemoryRegion("big", 64 << 20, pattern="sequential"),)
        )
        result = run_spec(spec)
        assert result.extra["dram_transfers"] > 0


class TestDeterminism:
    def test_same_spec_same_result(self):
        spec = TraceSpec("d", 20_000)
        a = run_spec(spec)
        b = run_spec(spec)
        assert a.cycles == b.cycles
        assert a.l2_misses == b.l2_misses
        assert a.branch_mispredictions == b.branch_mispredictions

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_any_seed_runs_and_is_sane(self, seed):
        result = run_spec(TraceSpec("p", 5000, seed=seed), warmup=0)
        assert result.instructions == 5000
        assert result.cycles >= 5000 // 4
        assert 0 <= result.ipc() <= 4.0
