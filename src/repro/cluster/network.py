"""Network model: 1 GbE NICs behind a non-blocking switch.

The paper's cluster uses 1 Gb ethernet.  We model each node's NIC as a
pair of serialised half-duplex-per-direction channels (TX and RX) and the
switch as non-blocking, so a transfer is limited by the slower of the
sender's TX and the receiver's RX availability — the standard fabric model
for rack-scale Hadoop clusters.
"""

from __future__ import annotations

from repro.perf.procfs import ProcFs

GIGABIT_PER_S = 125e6  # 1 Gb/s in bytes/s


class Nic:
    """One node's network interface with separate TX/RX serialisation."""

    def __init__(self, procfs: ProcFs, bandwidth: float = GIGABIT_PER_S) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.procfs = procfs
        self.bandwidth = bandwidth
        self.tx_busy_until = 0.0
        self.rx_busy_until = 0.0

    def reset(self) -> None:
        self.tx_busy_until = 0.0
        self.rx_busy_until = 0.0


class Network:
    """Switch connecting NICs; per-transfer latency, optional fabric cap.

    With ``fabric_bandwidth=None`` the switch is non-blocking: a transfer
    is limited only by the two endpoint NICs.  Real rack switches of the
    paper's era were often *oversubscribed* — the aggregate uplink/fabric
    capacity is below the sum of port speeds — which is what collapses
    all-to-all shuffles (Sort) at larger cluster sizes.  Passing a
    ``fabric_bandwidth`` (bytes/s) serialises all cross-node traffic
    through that shared capacity as well.
    """

    def __init__(
        self, latency_s: float = 0.0002, fabric_bandwidth: float | None = None
    ) -> None:
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        if fabric_bandwidth is not None and fabric_bandwidth <= 0:
            raise ValueError("fabric bandwidth must be positive")
        self.latency_s = latency_s
        self.fabric_bandwidth = fabric_bandwidth
        self.fabric_busy_until = 0.0
        self.transfers = 0
        self.bytes_moved = 0

    def transfer(self, now: float, src: Nic, dst: Nic, num_bytes: int) -> float:
        """Move *num_bytes* from *src* to *dst* starting at *now*.

        Returns the completion time.  Transfers between a node and itself
        should not go through the network (the caller checks locality).
        """
        if num_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        if src is dst:
            raise ValueError("local transfers do not use the network")
        start = max(now, src.tx_busy_until, dst.rx_busy_until)
        rate = min(src.bandwidth, dst.bandwidth)
        if self.fabric_bandwidth is not None:
            # Shared fabric: the transfer also occupies the switch core.
            start = max(start, self.fabric_busy_until)
            done = start + self.latency_s + num_bytes / min(rate, self.fabric_bandwidth)
            self.fabric_busy_until = start + num_bytes / self.fabric_bandwidth
        else:
            done = start + self.latency_s + num_bytes / rate
        src.tx_busy_until = done
        dst.rx_busy_until = done
        src.procfs.record_net(tx_bytes=num_bytes)
        dst.procfs.record_net(rx_bytes=num_bytes)
        self.transfers += 1
        self.bytes_moved += num_bytes
        return done
