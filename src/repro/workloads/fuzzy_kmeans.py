"""Fuzzy K-means — Table I row 7 (Mahout).

Soft clustering: every point belongs to *every* cluster with membership
u_ij = 1 / Σ_k (d_i/d_k)^(2/(m-1)); each map task emits membership-
weighted partial sums for all K clusters per point (K times the map
output of hard K-means — which is why the paper's Table I shows Fuzzy
K-means retiring ~5× the instructions of K-means on the same input).
"""

from __future__ import annotations

import math
from typing import Any

from repro.cluster.cluster import HadoopCluster
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import JobConf, MapReduceJob
from repro.uarch.trace import MemoryRegion
from repro.workloads import datagen
from repro.workloads.base import DataAnalysisWorkload, WorkloadInfo, WorkloadRun, register
from repro.workloads.kmeans import squared_distance


def memberships(
    point: tuple[float, ...], centroids: list[tuple[float, ...]], m: float
) -> list[float]:
    """Fuzzy membership of *point* in each centroid's cluster."""
    distances = [math.sqrt(squared_distance(point, c)) for c in centroids]
    for i, d in enumerate(distances):
        if d == 0.0:
            out = [0.0] * len(centroids)
            out[i] = 1.0
            return out
    power = 2.0 / (m - 1.0)
    inv = [(1.0 / d) ** power for d in distances]
    total = sum(inv)
    return [v / total for v in inv]


def _make_fuzzy_map(centroids: list[tuple[float, ...]], m: float):
    def fuzzy_map(_pid, point):
        u = memberships(point, centroids, m)
        for cid, weight in enumerate(u):
            w = weight ** m
            yield cid, (tuple(w * x for x in point), w)

    return fuzzy_map


def _weighted_combine(cid, partials):
    dims = len(partials[0][0])
    sums = [0.0] * dims
    total_w = 0.0
    for vec, w in partials:
        total_w += w
        for d in range(dims):
            sums[d] += vec[d]
    yield cid, (tuple(sums), total_w)


def _weighted_centroid_reduce(cid, partials):
    dims = len(partials[0][0])
    sums = [0.0] * dims
    total_w = 0.0
    for vec, w in partials:
        total_w += w
        for d in range(dims):
            sums[d] += vec[d]
    if total_w > 0:
        yield cid, tuple(s / total_w for s in sums)


@register
class FuzzyKMeansWorkload(DataAnalysisWorkload):
    info = WorkloadInfo(
        name="Fuzzy K-means",
        input_description="150 GB vector",
        input_gb_low=150,
        retired_instructions_1e9=15470,
        source="mahout",
        scenarios=(
            ("search engine", "Image processing"),
            ("social network", "High-resolution landform"),
        ),
        table1_row=7,
    )

    BASE_POINTS = 3000
    K = 5
    M = 2.0
    MAX_ITERATIONS = 8
    TOLERANCE = 1e-3

    def run(
        self,
        scale: float = 1.0,
        cluster: HadoopCluster | None = None,
        engine: LocalEngine | None = None,
    ) -> WorkloadRun:
        engine = engine or LocalEngine()
        points, true_centers = datagen.generate_cluster_points(
            max(self.K, int(self.BASE_POINTS * scale)), num_clusters=self.K, seed=53
        )
        centroids = [point for _, point in points[: self.K]]
        results = []
        iterations = 0
        for iteration in range(self.MAX_ITERATIONS):
            job = MapReduceJob(
                _make_fuzzy_map(centroids, self.M),
                _weighted_centroid_reduce,
                JobConf(
                    name=f"fuzzy-kmeans-iter{iteration}",
                    num_reduces=min(4, self.K),
                    # K memberships + K weighted emissions per point: ~5x
                    # the per-record work of hard K-means.
                    map_cost_per_record=6e-5,
                    map_cost_per_byte=1e-8,
                    reduce_cost_per_record=2e-6,
                ),
                combiner=_weighted_combine,
            )
            result = engine.execute(
                job, points, cluster=cluster, input_name=f"fkm-in-{iteration}"
            )
            results.append(result)
            new_centroids = list(centroids)
            for cid, centroid in result.output:
                new_centroids[cid] = centroid
            shift = max(
                math.sqrt(squared_distance(old, new))
                for old, new in zip(centroids, new_centroids)
            )
            centroids = new_centroids
            iterations = iteration + 1
            if shift < self.TOLERANCE:
                break
        return self._merge_results(
            self.info.name,
            results,
            centroids,
            iterations=iterations,
            true_centers=true_centers,
            points=len(points),
        )

    def uarch_profile(self) -> dict[str, Any]:
        return {
            # Membership math adds divisions and pow() on top of distances.
            "load_fraction": 0.28,
            "store_fraction": 0.09,
            "fp_fraction": 0.24,
            "mul_fraction": 0.03,
            "div_fraction": 0.01,
            "regions": (
                MemoryRegion("points", 128 << 20, 0.18, "sequential"),
                MemoryRegion("centroids", 64 << 10, 0.6, "random", burst=8,
                             hot_fraction=1.0),
                # K weighted output vectors per point: extra store stream
                MemoryRegion("weighted-sums", 1 << 20, 0.2, "sequential"),
            ),
            "kernel_fraction": 0.03,
            "loop_branch_fraction": 0.6,
            "mean_trip_count": 16.0,
            "branch_regularity": 0.98,
            # division chains serialise more than hard K-means
            "dep_mean": 3.0,
            "dep_density": 0.7,
        }
