"""The paper's eleven representative data-analysis workloads.

Each module implements one workload *for real* on the MapReduce substrate
(Table I: Sort, WordCount, Grep, Naive Bayes, SVM, K-means, Fuzzy K-means,
IBCF, HMM, PageRank, Hive-bench), exposes its Table I/II metadata, and
declares its micro-architectural trace profile (see DESIGN.md §2 for how
profiles are used).

All workloads share the :class:`~repro.workloads.base.DataAnalysisWorkload`
interface::

    wl = workload("WordCount")
    run = wl.run(scale=1.0, cluster=make_cluster(4))   # real execution
    spec = wl.trace_spec(200_000)                      # micro-arch profile
"""

from repro.workloads.base import (
    DataAnalysisWorkload,
    WorkloadInfo,
    WorkloadRun,
    all_workloads,
    workload,
    WORKLOAD_NAMES,
)

__all__ = [
    "DataAnalysisWorkload",
    "WorkloadInfo",
    "WorkloadRun",
    "all_workloads",
    "workload",
    "WORKLOAD_NAMES",
]
