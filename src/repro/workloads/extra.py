"""Extension workloads beyond Table I.

The paper's Table II motivates more applications than the eleven it
characterizes (TF-IDF under WordCount's social-network scenario, graph
analyses beyond PageRank).  These two are complete implementations in
the same mould — real multi-job MapReduce pipelines with micro-arch
profiles — and double as a demonstration that the framework is open
(`examples/custom_workload.py` shows a third, built inline).

They are intentionally *not* registered in the Table I registry: the
paper's figures stay an eleven-workload set; suite users add these via
:class:`~repro.core.suite.SuiteEntry`.
"""

from __future__ import annotations

import math
from typing import Any

from repro.cluster.cluster import HadoopCluster
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import JobConf, MapReduceJob
from repro.uarch.trace import MemoryRegion
from repro.workloads import datagen
from repro.workloads.base import DataAnalysisWorkload, WorkloadInfo, WorkloadRun


# ---------------------------------------------------------------------------
# TF-IDF
# ---------------------------------------------------------------------------


def _tf_map(doc_id, text):
    words = text.split()
    for word in words:
        yield (doc_id, word), 1


def _tf_reduce(key, counts):
    yield key, sum(counts)


def _df_map(doc_word, _count):
    _doc, word = doc_word
    yield word, 1


def _df_reduce(word, ones):
    yield word, sum(ones)


class TfIdfWorkload(DataAnalysisWorkload):
    """TF-IDF scoring — the Table II "Calculating the TF-IDF value"
    scenario as a classic three-job Hadoop pipeline:

    1. term frequencies per (document, word);
    2. document frequencies per word;
    3. map-only join of the two against the corpus size.
    """

    info = WorkloadInfo(
        name="TF-IDF",
        input_description="synthetic documents",
        input_gb_low=154,
        retired_instructions_1e9=4200,
        source="extension",
        scenarios=(("social network", "Calculating the TF-IDF value"),),
        table1_row=13,
    )

    BASE_DOCS = 600

    def run(
        self,
        scale: float = 1.0,
        cluster: HadoopCluster | None = None,
        engine: LocalEngine | None = None,
    ) -> WorkloadRun:
        engine = engine or LocalEngine()
        docs = datagen.generate_documents(max(2, int(self.BASE_DOCS * scale)), seed=71)
        n_docs = len(docs)

        tf_job = MapReduceJob(
            _tf_map, _tf_reduce,
            JobConf("tfidf-tf", num_reduces=8, map_cost_per_record=4e-6),
            combiner=_tf_reduce,
        )
        tf_result = engine.execute(tf_job, docs, cluster=cluster, input_name="tfidf-docs")

        df_job = MapReduceJob(
            _df_map, _df_reduce,
            JobConf("tfidf-df", num_reduces=8, map_cost_per_record=1e-6),
            combiner=_df_reduce,
        )
        df_result = engine.execute(
            df_job, tf_result.output, cluster=cluster, input_name="tfidf-tf-out"
        )
        df = dict(df_result.output)

        def score_map(doc_word, tf):
            doc, word = doc_word
            idf = math.log(n_docs / df[word])
            yield (doc, word), tf * idf

        score_job = MapReduceJob(
            score_map, None,
            JobConf("tfidf-score", num_reduces=0, map_cost_per_record=2e-6),
        )
        score_result = engine.execute(
            score_job, tf_result.output, cluster=cluster, input_name="tfidf-score-in"
        )
        scores = dict(score_result.output)
        return self._merge_results(
            self.info.name,
            [tf_result, df_result, score_result],
            scores,
            documents=n_docs,
            vocabulary=len(df),
        )

    def uarch_profile(self) -> dict[str, Any]:
        return {
            # WordCount-like tokenising plus a log() per scored pair.
            "load_fraction": 0.28,
            "store_fraction": 0.10,
            "fp_fraction": 0.06,
            "regions": (
                MemoryRegion("corpus", 128 << 20, 0.18, "sequential"),
                MemoryRegion("df-table", 2 << 20, 0.4, "random", burst=4,
                             hot_fraction=0.1, hot_weight=0.95),
            ),
            "kernel_fraction": 0.045,  # three chained jobs materialise twice
            "branch_regularity": 0.96,
            "dep_mean": 3.2,
            "dep_density": 0.68,
        }


# ---------------------------------------------------------------------------
# Connected components
# ---------------------------------------------------------------------------


def _make_cc_map(labels: dict[int, int]):
    def cc_map(node, neighbors):
        label = labels[node]
        yield node, label
        for neighbor in neighbors:
            yield neighbor, label

    return cc_map


def _cc_reduce(node, candidate_labels):
    yield node, min(candidate_labels)


class ConnectedComponentsWorkload(DataAnalysisWorkload):
    """Connected components by iterative label propagation (HashMin) —
    the social-network community workload PageRank's scenario family
    implies.  Each iteration every node adopts the minimum label in its
    closed neighbourhood; convergence when no label changes."""

    info = WorkloadInfo(
        name="ConnectedComponents",
        input_description="synthetic social graph",
        input_gb_low=187,
        retired_instructions_1e9=9000,
        source="extension",
        scenarios=(("social network", "Community detection"),),
        table1_row=14,
    )

    BASE_NODES = 1200
    MAX_ITERATIONS = 25

    def run(
        self,
        scale: float = 1.0,
        cluster: HadoopCluster | None = None,
        engine: LocalEngine | None = None,
    ) -> WorkloadRun:
        engine = engine or LocalEngine()
        graph = self._make_undirected_graph(max(2, int(self.BASE_NODES * scale)))
        labels = {node: node for node, _ in graph}
        results = []
        iterations = 0
        for iteration in range(self.MAX_ITERATIONS):
            job = MapReduceJob(
                _make_cc_map(labels),
                _cc_reduce,
                JobConf(
                    name=f"cc-iter{iteration}",
                    num_reduces=8,
                    map_cost_per_record=3e-6,
                    reduce_cost_per_record=1e-6,
                ),
            )
            result = engine.execute(
                job, graph, cluster=cluster, input_name=f"cc-in-{iteration}"
            )
            results.append(result)
            new_labels = dict(labels)
            new_labels.update(result.output)
            iterations = iteration + 1
            if new_labels == labels:
                break
            labels = new_labels
        components: dict[int, list[int]] = {}
        for node, label in labels.items():
            components.setdefault(label, []).append(node)
        return self._merge_results(
            self.info.name,
            results,
            labels,
            iterations=iterations,
            num_components=len(components),
            nodes=len(graph),
        )

    @staticmethod
    def _make_undirected_graph(num_nodes: int) -> list[tuple[int, tuple[int, ...]]]:
        """Symmetrise the datagen web graph into an undirected one."""
        directed = datagen.generate_web_graph(num_nodes, seed=73)
        adjacency: dict[int, set[int]] = {node: set() for node, _ in directed}
        for node, links in directed:
            for target in links:
                adjacency[node].add(target)
                adjacency[target].add(node)
        return [(node, tuple(sorted(adjacency[node]))) for node in sorted(adjacency)]

    def uarch_profile(self) -> dict[str, Any]:
        return {
            # label gathers: integer min-reductions over neighbour lists
            "load_fraction": 0.32,
            "store_fraction": 0.10,
            "fp_fraction": 0.0,
            "regions": (
                MemoryRegion("adjacency", 160 << 20, 0.25, "sequential"),
                MemoryRegion("label-vector", 16 << 20, 0.35, "random", burst=2,
                             hot_fraction=0.02, hot_weight=0.9),
            ),
            "kernel_fraction": 0.05,
            "branch_regularity": 0.96,
            "dep_mean": 2.8,
            "dep_density": 0.72,
        }
