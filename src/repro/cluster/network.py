"""Network model: 1 GbE NICs behind a non-blocking switch.

The paper's cluster uses 1 Gb ethernet.  We model each node's NIC as a
pair of serialised half-duplex-per-direction channels (TX and RX) and the
switch as non-blocking, so a transfer is limited by the slower of the
sender's TX and the receiver's RX availability — the standard fabric model
for rack-scale Hadoop clusters.

Gray links: production networks drop packets long before they fail
outright.  :meth:`Network.configure_loss` gives every link (or specific
links) a seeded segment-drop probability; a lossy transfer pays a
TCP-like price — the lost segments cross the wire again (charged to both
NICs and the shared fabric) plus a retransmission-timeout stall per loss
— and the retransmits show up in the ``/proc/net`` counters.  With all
loss rates at zero the timing math is bit-identical to the loss-free
path.

Failure domains: with a multi-rack
:class:`~repro.cluster.topology.Topology` and a ``core_bandwidth``, the
switch becomes *two-tier* — per-rack ToR switches (non-blocking, as
before) feeding an oversubscribed core fabric.  Cross-rack transfers
additionally serialise through the source and destination racks' shared
uplinks and the core; rack-local traffic never touches them.  Without a
``core_bandwidth`` the topology is purely observational (cross-rack
bytes are counted, timing is untouched), and without a topology the
model is exactly the pre-topology single switch.
"""

from __future__ import annotations

import random

from repro.cluster.topology import Topology
from repro.perf.procfs import ProcFs

GIGABIT_PER_S = 125e6  # 1 Gb/s in bytes/s

#: TCP-segment granularity of the retransmit model: loss is sampled per
#: segment of this size, and a lost segment is resent whole.
SEGMENT_BYTES = 64 * 1024


class Nic:
    """One node's network interface with separate TX/RX serialisation.

    Fail-slow hardware: a limping NIC (auto-negotiated down to a lower
    rate, a flapping transceiver throttling itself) still moves every
    byte, just slower.  ``slow_factor`` divides the effective bandwidth;
    at the default ``1.0`` the timing math is bit-identical to the
    healthy path.
    """

    def __init__(self, procfs: ProcFs, bandwidth: float = GIGABIT_PER_S) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.procfs = procfs
        self.bandwidth = bandwidth
        #: fail-slow divisor on the link rate (>= 1); 1.0 is healthy.
        self.slow_factor = 1.0
        self.tx_busy_until = 0.0
        self.rx_busy_until = 0.0

    @property
    def effective_bandwidth(self) -> float:
        """The rate transfers actually see (bandwidth / slow_factor)."""
        if self.slow_factor != 1.0:
            return self.bandwidth / self.slow_factor
        return self.bandwidth

    def reset(self) -> None:
        self.tx_busy_until = 0.0
        self.rx_busy_until = 0.0


class Network:
    """Switch connecting NICs; per-transfer latency, optional fabric cap.

    With ``fabric_bandwidth=None`` the switch is non-blocking: a transfer
    is limited only by the two endpoint NICs.  Real rack switches of the
    paper's era were often *oversubscribed* — the aggregate uplink/fabric
    capacity is below the sum of port speeds — which is what collapses
    all-to-all shuffles (Sort) at larger cluster sizes.  Passing a
    ``fabric_bandwidth`` (bytes/s) serialises all cross-node traffic
    through that shared capacity as well.
    """

    def __init__(
        self,
        latency_s: float = 0.0002,
        fabric_bandwidth: float | None = None,
        topology: Topology | None = None,
        core_bandwidth: float | None = None,
    ) -> None:
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        if fabric_bandwidth is not None and fabric_bandwidth <= 0:
            raise ValueError("fabric bandwidth must be positive")
        if core_bandwidth is not None and core_bandwidth <= 0:
            raise ValueError("core bandwidth must be positive")
        self.latency_s = latency_s
        self.fabric_bandwidth = fabric_bandwidth
        #: failure-domain map; cross-rack transfers are classified (and,
        #: with a ``core_bandwidth``, charged) against it.
        self.topology = topology
        #: oversubscribed core capacity shared by all cross-rack traffic
        #: (``None`` = the core never constrains, the pre-topology model).
        self.core_bandwidth = core_bandwidth
        self.fabric_busy_until = 0.0
        self.core_busy_until = 0.0
        #: per-rack ToR uplink occupancy (rack name → busy-until time).
        self.uplink_busy_until: dict[str, float] = {}
        self.transfers = 0
        self.bytes_moved = 0
        #: goodput that crossed rack boundaries (0 without a topology).
        self.cross_rack_bytes = 0
        # Gray-link state: a global segment-loss probability, optional
        # per-(src, dst) overrides, and the seeded rng that samples the
        # drops.  All zero/empty by default — the loss-free fast path.
        self.loss_rate = 0.0
        self.link_loss: dict[tuple[str, str], float] = {}
        self.retransmit_timeout_s = 0.01
        self.retransmits = 0
        self.retransmit_bytes = 0
        self._loss_seed = 0
        self._rng = random.Random(self._loss_seed)

    def configure_loss(
        self,
        loss_rate: float = 0.0,
        link_loss: dict[tuple[str, str], float] | None = None,
        retransmit_timeout_s: float = 0.01,
        seed: int = 0,
    ) -> None:
        """Set the gray-link drop model (and reseed its rng).

        ``loss_rate`` applies to every link; ``link_loss`` maps
        ``(src_node, dst_node)`` pairs to per-link overrides.  Rates must
        be in ``[0, 1)`` — a link that drops everything is a partition,
        which is modelled at the fault-plan level, not here.
        """
        for rate in [loss_rate, *(link_loss or {}).values()]:
            if not 0.0 <= rate < 1.0:
                raise ValueError("loss rates must be in [0, 1)")
        if retransmit_timeout_s < 0:
            raise ValueError("retransmit timeout must be non-negative")
        self.loss_rate = loss_rate
        self.link_loss = dict(link_loss or {})
        self.retransmit_timeout_s = retransmit_timeout_s
        self._loss_seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        """Fresh-fabric timeline: clear busy state, counters and the rng."""
        self.fabric_busy_until = 0.0
        self.core_busy_until = 0.0
        self.uplink_busy_until = {}
        self.transfers = 0
        self.bytes_moved = 0
        self.cross_rack_bytes = 0
        self.retransmits = 0
        self.retransmit_bytes = 0
        self._rng = random.Random(self._loss_seed)

    # -- checkpoint support (the cluster snapshots the loss rng too) --------

    def rng_state(self) -> tuple:
        return self._rng.getstate()

    def set_rng_state(self, state: tuple) -> None:
        self._rng.setstate(state)

    def _loss_for(self, src: Nic, dst: Nic) -> float:
        key = (src.procfs.node_name, dst.procfs.node_name)
        return self.link_loss.get(key, self.loss_rate)

    def transfer(self, now: float, src: Nic, dst: Nic, num_bytes: int) -> float:
        """Move *num_bytes* from *src* to *dst* starting at *now*.

        Returns the completion time.  Transfers between a node and itself
        should not go through the network (the caller checks locality).
        On a lossy link every dropped segment is resent (possibly more
        than once — drops are sampled per transmission) and each loss
        stalls the stream for one retransmission timeout; the resent
        bytes occupy the NICs and fabric like any other traffic.
        ``bytes_moved`` stays goodput; the wire overhead is tracked in
        ``retransmit_bytes`` and the per-node ``/proc`` counters.
        """
        if num_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        if src is dst:
            raise ValueError("local transfers do not use the network")
        loss = self._loss_for(src, dst)
        extra_bytes = 0
        lost_segments = 0
        if loss > 0.0 and num_bytes > 0:
            remaining = num_bytes
            while remaining > 0:
                segment = min(SEGMENT_BYTES, remaining)
                while self._rng.random() < loss:
                    lost_segments += 1
                    extra_bytes += segment
                remaining -= segment
        wire_bytes = num_bytes + extra_bytes
        stall = lost_segments * self.retransmit_timeout_s
        src_rack, dst_rack = self._racks_for(src, dst)
        cross_rack = src_rack is not None and src_rack != dst_rack
        start = max(now, src.tx_busy_until, dst.rx_busy_until)
        rate = min(src.effective_bandwidth, dst.effective_bandwidth)
        if cross_rack and self.core_bandwidth is not None:
            # Two-tier fabric: a cross-rack transfer also serialises
            # through both racks' ToR uplinks and the oversubscribed
            # core they share.  Rack-local traffic never reaches here.
            start = max(
                start,
                self.core_busy_until,
                self.uplink_busy_until.get(src_rack, 0.0),
                self.uplink_busy_until.get(dst_rack, 0.0),
            )
            done = (
                start
                + self.latency_s
                + wire_bytes / min(rate, self.core_bandwidth)
                + stall
            )
            occupied = start + wire_bytes / self.core_bandwidth
            self.core_busy_until = occupied
            self.uplink_busy_until[src_rack] = occupied
            self.uplink_busy_until[dst_rack] = occupied
        elif self.fabric_bandwidth is not None:
            # Shared fabric: the transfer also occupies the switch core.
            start = max(start, self.fabric_busy_until)
            done = start + self.latency_s + wire_bytes / min(rate, self.fabric_bandwidth) + stall
            self.fabric_busy_until = start + wire_bytes / self.fabric_bandwidth
        else:
            done = start + self.latency_s + wire_bytes / rate + stall
        src.tx_busy_until = done
        dst.rx_busy_until = done
        src.procfs.record_net(tx_bytes=wire_bytes)
        dst.procfs.record_net(rx_bytes=wire_bytes)
        if cross_rack:
            # Observational even without a core_bandwidth: counting
            # cross-rack traffic never moves the timing math.
            self.cross_rack_bytes += num_bytes
            src.procfs.record_cross_rack(wire_bytes)
            dst.procfs.record_cross_rack(wire_bytes)
        if lost_segments:
            src.procfs.record_net_retransmit(lost_segments, extra_bytes)
            self.retransmits += lost_segments
            self.retransmit_bytes += extra_bytes
        self.transfers += 1
        self.bytes_moved += num_bytes
        return done

    def _racks_for(self, src: Nic, dst: Nic) -> tuple[str | None, str | None]:
        """Rack names of both endpoints, or ``(None, None)`` when the
        topology is absent, flat, or does not know an endpoint (e.g. the
        master) — all cases where rack accounting must stay inert."""
        if self.topology is None or self.topology.is_flat:
            return None, None
        src_name = src.procfs.node_name
        dst_name = dst.procfs.node_name
        if not (self.topology.has_node(src_name) and self.topology.has_node(dst_name)):
            return None, None
        return self.topology.rack_of(src_name), self.topology.rack_of(dst_name)
