"""Simulated ``/proc`` for OS-level statistics.

The paper samples the proc filesystem for OS-level performance data such
as the number of disk writes per second (Figure 5).  Our cluster model
(:mod:`repro.cluster`) keeps per-device counters; :class:`ProcFs` renders
them in the familiar ``/proc/diskstats`` / ``/proc/net/dev`` shapes and
computes the per-second rates the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DiskSample:
    """One sampled snapshot of a node's disk counters."""

    time_s: float
    writes_completed: int
    sectors_written: int
    reads_completed: int
    sectors_read: int


class ProcFs:
    """Accumulates device counters and renders proc-style views.

    The cluster simulation calls :meth:`record_disk_write` /
    :meth:`record_disk_read` / :meth:`record_net` as it executes; analysis
    code calls :meth:`sample` with the simulated time and derives rates
    from successive samples, exactly like a userspace sampler reading
    ``/proc/diskstats``.
    """

    SECTOR_BYTES = 512

    def __init__(self, node_name: str = "node") -> None:
        self.node_name = node_name
        self.writes_completed = 0
        self.sectors_written = 0
        self.reads_completed = 0
        self.sectors_read = 0
        self.net_rx_bytes = 0
        self.net_tx_bytes = 0
        # Resilience counters (the tasktracker's view of Hadoop's fault
        # handling): failed/killed/speculative attempts hosted by this
        # node, plus shuffle fetches that died on this node's reducers.
        self.tasks_failed = 0
        self.tasks_killed = 0
        # Kills issued by a preempting scheduler (fair-share reclaim)
        # rather than by fault recovery; also counted in tasks_killed.
        self.tasks_preempted = 0
        self.tasks_speculative = 0
        self.fetch_failures = 0
        # Control-plane counters (the master's view): namenode edit-log
        # appends, SecondaryNameNode checkpoint merges, and jobtracker
        # restarts after a master crash.
        self.journal_edits = 0
        self.journal_checkpoints = 0
        self.master_restarts = 0
        # Data-integrity counters (the HDFS client/datanode view): CRC
        # chunks verified on read, verifications that failed (bit-rot or
        # in-flight corruption), bad-block reports filed with the
        # namenode, and DataBlockScanner scrub traffic.
        self.checksum_verifications = 0
        self.checksum_failures = 0
        self.bad_block_reports = 0
        self.scrub_bytes = 0
        # Gray-network counters (the NIC's TCP view): segments
        # retransmitted on lossy links and the wire bytes they cost.
        self.net_retransmits = 0
        self.net_retransmit_bytes = 0
        # Overload/fail-slow counters (the service frontend's and
        # jobtracker's degradation view): requests refused by admission
        # control or load shedding, requests killed at their deadline,
        # and speculative races won against a limping host.
        self.requests_shed = 0
        self.deadline_kills = 0
        self.speculative_wins = 0
        # Workflow counters (the DAG orchestrator's view, kept on the
        # master): workflows entering/leaving the system, stage-level
        # retries (distinct from task-attempt retries), minimal-subgraph
        # re-executions after total output loss, and stages cancelled by
        # an upstream permanent failure.
        self.workflows_submitted = 0
        self.workflows_completed = 0
        self.stage_retries = 0
        self.lineage_recomputes = 0
        self.stages_cancelled = 0
        # Warehouse counters (the HiveServer's view, kept on the master):
        # recurring statements served from the query/result
        # materialization cache vs compiled and executed cold.
        self.result_cache_hits = 0
        self.result_cache_misses = 0
        # Topology/locality counters (the jobtracker's delay-scheduling
        # view of this tasktracker): map tasks launched here by locality
        # tier, and wire bytes this node moved across a rack boundary.
        # Pure observation — recording never touches the simulated clock.
        self.maps_node_local = 0
        self.maps_rack_local = 0
        self.maps_off_rack = 0
        self.bytes_cross_rack = 0
        self.samples: list[DiskSample] = []

    # -- recording (called by the cluster model) ---------------------------

    def record_disk_write(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("write size must be non-negative")
        self.writes_completed += 1
        self.sectors_written += -(-num_bytes // self.SECTOR_BYTES)

    def record_disk_read(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("read size must be non-negative")
        self.reads_completed += 1
        self.sectors_read += -(-num_bytes // self.SECTOR_BYTES)

    def record_net(self, rx_bytes: int = 0, tx_bytes: int = 0) -> None:
        self.net_rx_bytes += rx_bytes
        self.net_tx_bytes += tx_bytes

    def record_task_failure(self) -> None:
        self.tasks_failed += 1

    def record_task_kill(self) -> None:
        self.tasks_killed += 1

    def record_task_preemption(self) -> None:
        self.tasks_killed += 1
        self.tasks_preempted += 1

    def record_speculative(self) -> None:
        self.tasks_speculative += 1

    def record_fetch_failure(self) -> None:
        self.fetch_failures += 1

    def record_journal_edit(self) -> None:
        self.journal_edits += 1

    def record_journal_checkpoint(self) -> None:
        self.journal_checkpoints += 1

    def record_master_restart(self) -> None:
        self.master_restarts += 1

    def record_checksum(self, chunks: int) -> None:
        if chunks < 0:
            raise ValueError("checksum chunk count must be non-negative")
        self.checksum_verifications += chunks

    def record_checksum_failure(self) -> None:
        self.checksum_failures += 1

    def record_bad_block_report(self) -> None:
        self.bad_block_reports += 1

    def record_scrub(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("scrub size must be non-negative")
        self.scrub_bytes += num_bytes

    def record_net_retransmit(self, segments: int, num_bytes: int) -> None:
        if segments < 0 or num_bytes < 0:
            raise ValueError("retransmit counts must be non-negative")
        self.net_retransmits += segments
        self.net_retransmit_bytes += num_bytes

    def record_request_shed(self) -> None:
        self.requests_shed += 1

    def record_deadline_kill(self) -> None:
        self.deadline_kills += 1

    def record_speculative_win(self) -> None:
        self.speculative_wins += 1

    def record_workflow_submitted(self) -> None:
        self.workflows_submitted += 1

    def record_workflow_completed(self) -> None:
        self.workflows_completed += 1

    def record_stage_retry(self) -> None:
        self.stage_retries += 1

    def record_lineage_recompute(self) -> None:
        self.lineage_recomputes += 1

    def record_stage_cancelled(self) -> None:
        self.stages_cancelled += 1

    def record_result_cache_hit(self) -> None:
        self.result_cache_hits += 1

    def record_result_cache_miss(self) -> None:
        self.result_cache_misses += 1

    def record_map_locality(self, tier: str) -> None:
        """Count one map launch by its delay-scheduling tier."""
        if tier == "node":
            self.maps_node_local += 1
        elif tier == "rack":
            self.maps_rack_local += 1
        elif tier == "off":
            self.maps_off_rack += 1
        else:
            raise ValueError(f"locality tier must be node/rack/off, got {tier!r}")

    def record_cross_rack(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("cross-rack size must be non-negative")
        self.bytes_cross_rack += num_bytes

    # -- sampling -----------------------------------------------------------

    def sample(self, time_s: float) -> DiskSample:
        """Take a snapshot at simulated time *time_s* and remember it."""
        snap = DiskSample(
            time_s=time_s,
            writes_completed=self.writes_completed,
            sectors_written=self.sectors_written,
            reads_completed=self.reads_completed,
            sectors_read=self.sectors_read,
        )
        self.samples.append(snap)
        return snap

    def disk_writes_per_second(self) -> float:
        """Average write operations per second across the sampled window.

        Requires at least two samples (start and end of the measured run).
        """
        if len(self.samples) < 2:
            raise ValueError("need at least two samples to compute a rate")
        first, last = self.samples[0], self.samples[-1]
        elapsed = last.time_s - first.time_s
        if elapsed <= 0:
            return 0.0
        return (last.writes_completed - first.writes_completed) / elapsed

    def bytes_written(self) -> int:
        return self.sectors_written * self.SECTOR_BYTES

    # -- proc-style rendering ------------------------------------------------

    def render_diskstats(self) -> str:
        """A ``/proc/diskstats``-flavoured line for this node's disk."""
        return (
            f"   8       0 sda {self.reads_completed} 0 {self.sectors_read} 0 "
            f"{self.writes_completed} 0 {self.sectors_written} 0 0 0 0"
        )

    def render_netdev(self) -> str:
        """A ``/proc/net/dev``-flavoured line for this node's NIC."""
        return (
            f"  eth0: {self.net_rx_bytes} 0 0 0 0 0 0 0 "
            f"{self.net_tx_bytes} 0 0 0 0 0 0 0"
        )

    def render_resilience(self) -> str:
        """A tasktracker-status-flavoured line of the resilience counters."""
        return (
            f"{self.node_name}: tasks_failed {self.tasks_failed} "
            f"tasks_killed {self.tasks_killed} "
            f"tasks_preempted {self.tasks_preempted} "
            f"tasks_speculative {self.tasks_speculative} "
            f"fetch_failures {self.fetch_failures}"
        )

    def render_integrity(self) -> str:
        """A datanode-status line of the integrity/gray-network counters."""
        return (
            f"{self.node_name}: checksum_verifications {self.checksum_verifications} "
            f"checksum_failures {self.checksum_failures} "
            f"bad_block_reports {self.bad_block_reports} "
            f"scrub_bytes {self.scrub_bytes} "
            f"net_retransmits {self.net_retransmits} "
            f"net_retransmit_bytes {self.net_retransmit_bytes}"
        )

    def render_overload(self) -> str:
        """A frontend-status line of the overload/fail-slow counters."""
        return (
            f"{self.node_name}: requests_shed {self.requests_shed} "
            f"deadline_kills {self.deadline_kills} "
            f"speculative_wins {self.speculative_wins}"
        )

    def render_control_plane(self) -> str:
        """A namenode/jobtracker-status line of the control-plane counters."""
        return (
            f"{self.node_name}: journal_edits {self.journal_edits} "
            f"journal_checkpoints {self.journal_checkpoints} "
            f"master_restarts {self.master_restarts}"
        )

    def render_topology(self) -> str:
        """A jobtracker-status line of the locality/failure-domain counters."""
        return (
            f"{self.node_name}: maps_node_local {self.maps_node_local} "
            f"maps_rack_local {self.maps_rack_local} "
            f"maps_off_rack {self.maps_off_rack} "
            f"bytes_cross_rack {self.bytes_cross_rack}"
        )

    def render_warehouse(self) -> str:
        """A HiveServer-status line of the materialization-cache counters."""
        return (
            f"{self.node_name}: result_cache_hits {self.result_cache_hits} "
            f"result_cache_misses {self.result_cache_misses}"
        )

    def render_workflow(self) -> str:
        """An orchestrator-status line of the DAG workflow counters."""
        return (
            f"{self.node_name}: workflows_submitted {self.workflows_submitted} "
            f"workflows_completed {self.workflows_completed} "
            f"stage_retries {self.stage_retries} "
            f"lineage_recomputes {self.lineage_recomputes} "
            f"stages_cancelled {self.stages_cancelled}"
        )
