"""Tests for the persistent simulation result cache and parallel suite runs.

The cache's contract has two halves: keys are *stable* (the same inputs
always address the same entry, and any input change addresses a new one),
and hits are *bit-identical* to cold runs.  Parallel characterization
carries the same promise — ``workers=N`` must return the exact result
list of a serial run, in the same order.  The mix-level cache (whole
``MixOutcome`` values, content-addressed by trace + scheduler config +
fault plan + topology + cluster code digest) repeats both halves at the
cluster layer.
"""

import dataclasses
import os
import random

import pytest

from repro.core.characterize import characterize_suite, resolve_workers
from repro.core.simcache import (
    MixCache,
    SimCache,
    cache_enabled,
    clear,
    clear_mix,
    cluster_code_version,
    code_version,
    load_mix,
    load_result,
    mix_cache_enabled,
    mix_cache_key,
    mix_outcome_payload,
    sim_cache_key,
    store_mix,
    store_result,
)
from repro.core.suite import DCBench
from repro.uarch.config import XEON_E5645, scaled_machine
from repro.uarch.pipeline import Core
from repro.uarch.trace import SyntheticTrace, TraceSpec

SCALED = scaled_machine(8)


@pytest.fixture()
def spec():
    return TraceSpec(name="cachetest", instructions=5_000, seed=11)


class TestCacheKey:
    def test_key_is_stable(self, spec):
        assert sim_cache_key(spec, SCALED) == sim_cache_key(spec, SCALED)
        # A structurally equal copy hashes identically too.
        assert sim_cache_key(dataclasses.replace(spec), SCALED) == (
            sim_cache_key(spec, SCALED)
        )

    @pytest.mark.parametrize(
        "change",
        [
            {"instructions": 6_000},
            {"seed": 12},
            {"load_fraction": 0.31},
            {"dep_mean": 3.5},
        ],
    )
    def test_any_spec_field_changes_key(self, spec, change):
        other = dataclasses.replace(spec, **change)
        assert sim_cache_key(other, SCALED) != sim_cache_key(spec, SCALED)

    def test_machine_changes_key(self, spec):
        assert sim_cache_key(spec, XEON_E5645) != sim_cache_key(spec, SCALED)

    def test_warmup_changes_key(self, spec):
        assert sim_cache_key(spec, SCALED, warmup=100) != sim_cache_key(spec, SCALED)

    def test_key_folds_in_code_version(self, spec, monkeypatch):
        base = sim_cache_key(spec, SCALED)
        monkeypatch.setattr("repro.core.simcache._code_version", "deadbeefdeadbeef")
        assert sim_cache_key(spec, SCALED) != base

    def test_code_version_shape(self):
        version = code_version()
        assert len(version) == 16
        int(version, 16)  # hex digest prefix


class TestStore:
    def test_round_trip_bit_identical(self, spec, tmp_path):
        result = Core(SCALED).run(SyntheticTrace(spec))
        key = sim_cache_key(spec, SCALED)
        store_result(key, result, tmp_path)
        loaded = load_result(key, tmp_path)
        assert dataclasses.asdict(loaded) == dataclasses.asdict(result)

    def test_missing_key_is_none(self, tmp_path):
        assert load_result("0" * 64, tmp_path) is None

    def test_corrupt_entry_is_a_miss(self, spec, tmp_path):
        result = Core(SCALED).run(SyntheticTrace(spec))
        key = sim_cache_key(spec, SCALED)
        store_result(key, result, tmp_path)
        path = tmp_path / "sim" / key[:2] / f"{key}.json"
        path.write_text("{not json", encoding="utf-8")
        assert load_result(key, tmp_path) is None

    def test_clear_counts_and_removes(self, spec, tmp_path):
        result = Core(SCALED).run(SyntheticTrace(spec))
        store_result(sim_cache_key(spec, SCALED), result, tmp_path)
        other = dataclasses.replace(spec, seed=99)
        store_result(sim_cache_key(other, SCALED), result, tmp_path)
        assert clear(tmp_path) == 2
        assert clear(tmp_path) == 0
        assert load_result(sim_cache_key(spec, SCALED), tmp_path) is None


class TestSimCache:
    def test_hit_is_bit_identical_to_cold_run(self, spec, tmp_path):
        cache = SimCache(tmp_path, enabled=True)
        cold = cache.simulate(spec, SCALED)
        warm = cache.simulate(spec, SCALED)
        assert dataclasses.asdict(cold) == dataclasses.asdict(warm)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_engines_share_entries(self, spec, tmp_path):
        # The engine is not part of the key: bit-identity makes the
        # results interchangeable, so a reference run serves fast hits.
        cache = SimCache(tmp_path, enabled=True)
        cold = cache.simulate(spec, SCALED, engine="reference")
        warm = cache.simulate(spec, SCALED, engine="fast")
        assert dataclasses.asdict(cold) == dataclasses.asdict(warm)
        assert cache.hits == 1

    def test_disabled_cache_never_stores(self, spec, tmp_path):
        cache = SimCache(tmp_path, enabled=False)
        cache.simulate(spec, SCALED)
        cache.simulate(spec, SCALED)
        assert cache.hits == 0
        assert cache.misses == 2
        assert not (tmp_path / "sim").exists()

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CACHE", raising=False)
        assert cache_enabled()
        for off in ("0", "false", "off", "no", ""):
            monkeypatch.setenv("REPRO_SIM_CACHE", off)
            assert not cache_enabled()
        monkeypatch.setenv("REPRO_SIM_CACHE", "1")
        assert cache_enabled()

    def test_env_dir_override(self, spec, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "relocated"))
        cache = SimCache(enabled=True)
        cache.simulate(spec, SCALED)
        assert (tmp_path / "relocated" / "sim").exists()


def build_small_mix(engine="reference", *, seed=0, plan=False, racks=1):
    """A small deterministic mix on a fresh cluster, ready to run."""
    from repro.cluster.cluster import JobWork, MapWork, ReduceWork, make_cluster
    from repro.cluster.faults import FaultPlan
    from repro.cluster.scheduler import FifoScheduler, MultiJobCluster

    if engine == "fast":
        from repro.perf.clusterpath import FastMultiJobCluster as cls
    else:
        cls = MultiJobCluster
    cluster = make_cluster(
        num_slaves=max(3, racks), map_slots=2, block_size=64 * 1024, racks=racks
    )
    fault_plan = None
    if plan:
        fault_plan = FaultPlan(partitions=(("slave2", 0.2, 0.5),))
    multi = cls(cluster, scheduler=FifoScheduler(), plan=fault_plan)
    rng = random.Random(seed)
    for i in range(4):
        maps = tuple(
            MapWork(1 << 12, rng.uniform(0.05, 0.3), 1 << 10) for _ in range(2)
        )
        multi.submit(
            JobWork(name=f"j{i}", maps=maps, reduces=()),
            arrival_s=i * 0.1,
            user=f"u{i % 2}",
        )
    return multi


class TestMixCacheKey:
    def test_key_is_stable_across_builds(self):
        assert mix_cache_key(build_small_mix()) == mix_cache_key(build_small_mix())

    def test_engine_class_shares_the_key(self):
        # Fast vs reference is bit-identical by contract, so either
        # engine's cold run may serve the other's warm hit.
        assert mix_cache_key(build_small_mix("reference")) == (
            mix_cache_key(build_small_mix("fast"))
        )

    @pytest.mark.parametrize(
        "change",
        [{"seed": 1}, {"plan": True}, {"racks": 3}],
    )
    def test_any_input_changes_key(self, change):
        assert mix_cache_key(build_small_mix(**change)) != (
            mix_cache_key(build_small_mix())
        )

    def test_run_engine_is_keyed(self):
        # "legacy" runs carry no event log, so the outcomes differ.
        assert mix_cache_key(build_small_mix(), run_engine="legacy") != (
            mix_cache_key(build_small_mix(), run_engine="events")
        )

    def test_key_folds_in_cluster_code_version(self, monkeypatch):
        base = mix_cache_key(build_small_mix())
        monkeypatch.setattr(
            "repro.core.simcache._cluster_code_version", "feedfacefeedface"
        )
        assert mix_cache_key(build_small_mix()) != base

    def test_cluster_code_version_shape(self):
        version = cluster_code_version()
        assert len(version) == 16
        int(version, 16)  # hex digest prefix


class TestMixStore:
    def test_round_trip_bit_identical(self, tmp_path):
        multi = build_small_mix(plan=True)
        key = mix_cache_key(multi)
        outcome = multi.run()
        store_mix(key, outcome, tmp_path)
        loaded = load_mix(key, tmp_path)
        assert mix_outcome_payload(loaded) == mix_outcome_payload(outcome)

    def test_missing_key_is_none(self, tmp_path):
        assert load_mix("0" * 64, tmp_path) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        multi = build_small_mix()
        key = mix_cache_key(multi)
        store_mix(key, multi.run(), tmp_path)
        path = tmp_path / "mix" / key[:2] / f"{key}.json"
        path.write_text("{not json", encoding="utf-8")
        assert load_mix(key, tmp_path) is None

    def test_wrong_shape_entry_is_a_miss(self, tmp_path):
        multi = build_small_mix()
        key = mix_cache_key(multi)
        store_mix(key, multi.run(), tmp_path)
        path = tmp_path / "mix" / key[:2] / f"{key}.json"
        path.write_text('{"outcome": {"reports": 3}}', encoding="utf-8")
        assert load_mix(key, tmp_path) is None

    def test_clear_mix_counts_and_removes(self, tmp_path):
        for seed in (0, 1):
            multi = build_small_mix(seed=seed)
            store_mix(mix_cache_key(multi), multi.run(), tmp_path)
        assert clear_mix(tmp_path) == 2
        assert clear_mix(tmp_path) == 0


class TestMixCache:
    def test_hit_is_bit_identical_to_cold_run(self, tmp_path):
        cache = MixCache(tmp_path, enabled=True)
        cold = cache.run(build_small_mix(plan=True))
        warm = cache.run(build_small_mix(plan=True))
        assert mix_outcome_payload(cold) == mix_outcome_payload(warm)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_fast_cold_serves_reference_warm(self, tmp_path):
        cache = MixCache(tmp_path, enabled=True)
        cold = cache.run(build_small_mix("fast"))
        warm = cache.run(build_small_mix("reference"))
        assert mix_outcome_payload(cold) == mix_outcome_payload(warm)
        assert cache.hits == 1

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = MixCache(tmp_path, enabled=False)
        cache.run(build_small_mix())
        cache.run(build_small_mix())
        assert cache.hits == 0
        assert cache.misses == 2
        assert not (tmp_path / "mix").exists()

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.delenv("REPRO_MIX_CACHE", raising=False)
        assert mix_cache_enabled()
        for off in ("0", "false", "off", "no", ""):
            monkeypatch.setenv("REPRO_MIX_CACHE", off)
            assert not mix_cache_enabled()
        monkeypatch.setenv("REPRO_MIX_CACHE", "1")
        assert mix_cache_enabled()

    def test_run_mix_integration(self, tmp_path):
        """run_mix(mix_cache=...) returns identical results warm and cold."""
        from repro.cluster.scheduler import make_scheduler
        from repro.cluster.tenancy import generate_trace, run_mix

        trace = generate_trace(seed=3, num_jobs=4)
        cold_cache = MixCache(tmp_path, enabled=True)
        cold = run_mix(
            trace, make_scheduler("fifo"), engine="fast", mix_cache=cold_cache
        )
        warm_cache = MixCache(tmp_path, enabled=True)
        warm = run_mix(
            trace, make_scheduler("fifo"), engine="fast", mix_cache=warm_cache
        )
        assert warm_cache.hits >= 1
        assert mix_outcome_payload(cold.outcome) == (
            mix_outcome_payload(warm.outcome)
        )
        assert cold.makespan_s == warm.makespan_s


class TestParallelSuite:
    def test_resolve_workers(self):
        assert resolve_workers(None, 10) == 1
        assert resolve_workers(1, 10) == 1
        assert resolve_workers(3, 2) == 2  # capped at job count
        auto = resolve_workers("auto", 8)
        assert 1 <= auto <= min(8, os.cpu_count() or 1)
        with pytest.raises(ValueError):
            resolve_workers(0, 10)
        with pytest.raises(ValueError):
            resolve_workers("many", 10)

    def test_workers_match_serial(self):
        """workers=4 returns the bit-identical, same-order result list."""
        sub = DCBench.data_analysis_only()
        serial = characterize_suite(sub, instructions=5_000, workers=1)
        parallel = characterize_suite(sub, instructions=5_000, workers=4)
        assert [c.name for c in parallel] == [e.name for e in sub]
        for a, b in zip(serial, parallel):
            assert a.name == b.name
            assert a.metrics == b.metrics
            assert dataclasses.asdict(a.result) == dataclasses.asdict(b.result)

    def test_workers_with_shared_cache(self, tmp_path):
        """Parallel workers populate one cache; a serial rerun hits it."""
        sub = DCBench.data_analysis_only()
        cold_cache = SimCache(tmp_path, enabled=True)
        cold = characterize_suite(
            sub, instructions=5_000, workers=2, cache=cold_cache
        )
        warm_cache = SimCache(tmp_path, enabled=True)
        warm = characterize_suite(
            sub, instructions=5_000, workers=1, cache=warm_cache
        )
        assert warm_cache.hits == len(sub)
        for a, b in zip(cold, warm):
            assert dataclasses.asdict(a.result) == dataclasses.asdict(b.result)
