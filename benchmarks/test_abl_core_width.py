"""Ablation: superscalar width.

Section IV-A notes each Westmere core "can commit up to 4 instructions on
each cycle in theory" yet no workload family comes close.  This sweep
(2-wide / 4-wide / 6-wide machines) quantifies why wider cores are wasted
on datacenter workloads: with IPC bounded by stalls, doubling the width
moves the compute-bound HPCC kernels but barely moves the data-analysis
and service workloads — an argument for the paper's efficiency-oriented
recommendations.
"""

from dataclasses import replace

from conftest import run_once

from repro.core import DCBench, characterize
from repro.uarch.config import scaled_machine

WORKLOADS = ["WordCount", "Hive-bench", "Data Serving", "HPCC-HPL"]
WIDTHS = (2, 4, 6)


def test_core_width(benchmark):
    suite = DCBench.default()
    base = scaled_machine(8)

    def harness():
        results: dict[str, dict[int, float]] = {}
        for name in WORKLOADS:
            entry = suite.entry(name)
            per_width = {}
            for width in WIDTHS:
                core = replace(
                    base.core,
                    fetch_width=width,
                    decode_width=width,
                    rename_width=width,
                    retire_width=width,
                )
                machine = replace(base, core=core)
                c = characterize(entry, instructions=120_000, machine=machine)
                per_width[width] = c.metrics.ipc
            results[name] = per_width
        return results

    results = run_once(benchmark, harness)
    print()
    print("Ablation: IPC versus machine width")
    print(f"{'workload':<14s}" + "".join(f"{w}-wide".rjust(10) for w in WIDTHS))
    for name, per_width in results.items():
        print(f"{name:<14s}" + "".join(f"{per_width[w]:>10.2f}" for w in WIDTHS))

    # Width never hurts.
    for name, per_width in results.items():
        ipcs = [per_width[w] for w in WIDTHS]
        assert ipcs[0] <= ipcs[1] * 1.02 and ipcs[1] <= ipcs[2] * 1.02
    # The study's central width finding: every workload family runs far
    # below even a 2-wide machine's commit bound (the paper's Figure 3
    # tops out around 1.2 IPC on a 4-wide part), so widening the core
    # from 2 to 6 buys almost nothing anywhere — stalls, not width, bound
    # datacenter workloads.
    for name, per_width in results.items():
        assert per_width[6] / per_width[2] < 1.15, name
        assert per_width[6] < 2.0, name
