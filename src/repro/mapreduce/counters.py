"""Hadoop-style job counters.

Mirrors the counter groups a Hadoop 1.x job reports: map input/output
records and bytes, combine input/output, spills, shuffle bytes, reduce
input groups/records and output.  The engine fills these from the actual
execution; tests assert conservation laws on them (e.g. combine output ==
reduce input records).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class JobCounters:
    """Counters for one job execution."""

    map_input_records: int = 0
    map_input_bytes: int = 0
    map_output_records: int = 0
    map_output_bytes: int = 0
    combine_input_records: int = 0
    combine_output_records: int = 0
    spilled_records: int = 0
    spilled_bytes: int = 0
    shuffle_bytes: int = 0
    reduce_input_groups: int = 0
    reduce_input_records: int = 0
    reduce_output_records: int = 0
    reduce_output_bytes: int = 0
    #: per-reducer shuffled bytes (drives ReduceWork)
    reduce_shuffle_bytes: list[int] = field(default_factory=list)

    def merge(self, other: "JobCounters") -> None:
        """Accumulate *other* into self (multi-job workflows)."""
        for name in (
            "map_input_records",
            "map_input_bytes",
            "map_output_records",
            "map_output_bytes",
            "combine_input_records",
            "combine_output_records",
            "spilled_records",
            "spilled_bytes",
            "shuffle_bytes",
            "reduce_input_groups",
            "reduce_input_records",
            "reduce_output_records",
            "reduce_output_bytes",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict[str, int]:
        return {
            "Map input records": self.map_input_records,
            "Map input bytes": self.map_input_bytes,
            "Map output records": self.map_output_records,
            "Map output bytes": self.map_output_bytes,
            "Combine input records": self.combine_input_records,
            "Combine output records": self.combine_output_records,
            "Spilled records": self.spilled_records,
            "Reduce shuffle bytes": self.shuffle_bytes,
            "Reduce input groups": self.reduce_input_groups,
            "Reduce input records": self.reduce_input_records,
            "Reduce output records": self.reduce_output_records,
            "Reduce output bytes": self.reduce_output_bytes,
        }
