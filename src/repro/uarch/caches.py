"""Set-associative cache models and the three-level hierarchy.

Each :class:`Cache` is a classic set-associative, write-allocate,
LRU-replacement cache keyed by line address.  :class:`CacheHierarchy`
stacks L1 → L2 → L3 → memory, returns the access latency observed by the
core, and maintains per-level hit/miss counters — the raw events behind the
paper's Figures 7, 9 and 10.

A simple next-line prefetcher can be enabled on L2/L3 (Westmere ships
hardware stream prefetchers; without one, sequential workloads such as
HPCC-STREAM would see every line miss to memory).
"""

from __future__ import annotations

from repro.uarch.config import CacheConfig, MachineConfig


class Cache:
    """One level of set-associative cache with LRU replacement.

    The cache stores line addresses only (tags); there is no data payload,
    since the simulator is timing-only.  ``lookup``/``insert`` are split so
    the hierarchy can implement allocate-on-miss ordering explicitly.
    """

    __slots__ = (
        "config",
        "name",
        "_sets",
        "_num_sets",
        "_set_mask",
        "_line_shift",
        "ways",
        "hits",
        "misses",
        "evictions",
        "prefetch_hits",
    )

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.name = config.name
        num_sets = config.num_sets
        if config.line_bytes & (config.line_bytes - 1):
            raise ValueError(f"{config.name}: line size must be a power of two")
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]
        self._num_sets = num_sets
        # Power-of-two set counts index with a precomputed bit mask; only
        # non-power-of-two geometries (e.g. the 12 MB L3's 12288 sets)
        # fall back to the modulo path.
        self._set_mask = num_sets - 1 if num_sets & (num_sets - 1) == 0 else None
        self._line_shift = config.line_bytes.bit_length() - 1
        self.ways = config.associativity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.prefetch_hits = 0

    def line_of(self, addr: int) -> int:
        """Return the line address (addr with offset bits stripped)."""
        return addr >> self._line_shift

    def set_index(self, line: int) -> int:
        """Map a line address to its set (mask when power-of-two sets)."""
        mask = self._set_mask
        return line & mask if mask is not None else line % self._num_sets

    def access(self, addr: int) -> bool:
        """Access *addr*; return True on hit.  Misses allocate the line."""
        line = addr >> self._line_shift
        mask = self._set_mask
        ways = self._sets[line & mask if mask is not None else line % self._num_sets]
        if line in ways:
            # Move-to-front LRU: front of the list is most recent.
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            self.hits += 1
            return True
        self.misses += 1
        ways.insert(0, line)
        if len(ways) > self.ways:
            ways.pop()
            self.evictions += 1
        return False

    def probe(self, addr: int) -> bool:
        """Check presence without updating LRU state or counters."""
        line = addr >> self._line_shift
        mask = self._set_mask
        return line in self._sets[line & mask if mask is not None else line % self._num_sets]

    def fill(self, addr: int) -> None:
        """Install a line (prefetch fill): no hit/miss accounting."""
        line = addr >> self._line_shift
        mask = self._set_mask
        ways = self._sets[line & mask if mask is not None else line % self._num_sets]
        if line in ways:
            return
        ways.insert(0, line)
        if len(ways) > self.ways:
            ways.pop()
            self.evictions += 1

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_ratio(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.prefetch_hits = 0


class CacheHierarchy:
    """L1 → L2 → L3 → memory data path shared by both fetch and data sides.

    The instruction side passes its own L1 (the L1I); the data side the
    L1D.  L2/L3 are unified as on the real part.  ``access`` returns the
    total latency in cycles for the request.
    """

    __slots__ = (
        "l1",
        "l2",
        "l3",
        "memory_latency",
        "prefetch",
        "_line_bytes",
        "dram_transfers",
        "prefetch_fills",
    )

    def __init__(
        self,
        l1: Cache,
        l2: Cache,
        l3: Cache,
        memory_latency: int,
        prefetch: bool = True,
    ) -> None:
        self.l1 = l1
        self.l2 = l2
        self.l3 = l3
        self.memory_latency = memory_latency
        self.prefetch = prefetch
        self._line_bytes = l1.config.line_bytes
        #: 64-byte lines brought in from DRAM (demand misses + prefetches);
        #: the pipeline uses this to model memory bandwidth occupancy.
        self.dram_transfers = 0
        self.prefetch_fills = 0

    def access(self, addr: int) -> int:
        """Walk the hierarchy for *addr*; return the observed latency."""
        if self.l1.access(addr):
            return self.l1.config.hit_latency
        latency = self.l1.config.hit_latency + self.l2.config.hit_latency
        if self.l2.access(addr):
            if self.prefetch:
                self._prefetch_next(addr)
            return latency
        latency += self.l3.config.hit_latency
        if not self.l3.access(addr):
            latency += self.memory_latency
            self.dram_transfers += 1
        if self.prefetch:
            self._prefetch_next(addr)
        return latency

    def _prefetch_next(self, addr: int) -> None:
        """Stream prefetcher: pull the next line towards L2.

        A prefetch that must come from DRAM is charged to
        ``dram_transfers`` so the bandwidth model sees prefetch traffic
        (this is what makes HPCC-STREAM bandwidth-bound rather than
        latency-bound, as on real hardware).
        """
        nxt = addr + self._line_bytes
        if self.l2.probe(nxt):
            return
        if not self.l3.probe(nxt):
            self.l3.fill(nxt)
            self.dram_transfers += 1
        self.l2.fill(nxt)
        self.prefetch_fills += 1

    def reset_counters(self) -> None:
        self.l1.reset_counters()
        self.l2.reset_counters()
        self.l3.reset_counters()
        self.dram_transfers = 0
        self.prefetch_fills = 0


def build_data_hierarchy(machine: MachineConfig) -> CacheHierarchy:
    """Construct the data-side hierarchy (L1D/L2/L3) for *machine*."""
    return CacheHierarchy(
        Cache(machine.l1d),
        Cache(machine.l2),
        Cache(machine.l3),
        machine.memory_latency,
        prefetch=machine.prefetch,
    )
