"""PageRank — Table I row 10 (Mahout).

The classic iterative MapReduce formulation over a preferential-
attachment web graph: each map task distributes a page's current rank
over its out-links (and forwards the adjacency list), the reducer sums
incoming contributions and applies the damping factor; dangling-node mass
is redistributed each iteration so the ranks keep summing to 1.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.cluster import HadoopCluster
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import JobConf, MapReduceJob
from repro.uarch.trace import MemoryRegion
from repro.workloads import datagen
from repro.workloads.base import DataAnalysisWorkload, WorkloadInfo, WorkloadRun, register

DAMPING = 0.85


def _make_rank_map(ranks: dict[int, float]):
    def rank_map(page, links):
        rank = ranks[page]
        yield page, ("links", links)
        if links:
            share = rank / len(links)
            for target in links:
                yield target, ("rank", share)
        else:
            # Dangling page: its mass is redistributed globally below.
            yield -1, ("dangling", rank)

    return rank_map


def _make_rank_reduce(num_pages: int, dangling_share: float):
    base = (1.0 - DAMPING) / num_pages + DAMPING * dangling_share / num_pages

    def rank_reduce(page, tagged):
        if page == -1:
            total = sum(v for tag, v in tagged if tag == "dangling")
            yield -1, ("dangling_total", total)
            return
        links = ()
        incoming = 0.0
        for tag, value in tagged:
            if tag == "links":
                links = value
            else:
                incoming += value
        yield page, (base + DAMPING * incoming, links)

    return rank_reduce


@register
class PageRankWorkload(DataAnalysisWorkload):
    info = WorkloadInfo(
        name="PageRank",
        input_description="187 GB web page",
        input_gb_low=187,
        retired_instructions_1e9=18470,
        source="mahout",
        scenarios=(("search engine", "Compute the page rank"),),
        table1_row=10,
    )

    BASE_PAGES = 2000
    ITERATIONS = 8

    def run(
        self,
        scale: float = 1.0,
        cluster: HadoopCluster | None = None,
        engine: LocalEngine | None = None,
    ) -> WorkloadRun:
        engine = engine or LocalEngine()
        graph = datagen.generate_web_graph(max(2, int(self.BASE_PAGES * scale)))
        num_pages = len(graph)
        ranks = {page: 1.0 / num_pages for page, _ in graph}
        dangling_share = 0.0
        results = []
        for iteration in range(self.ITERATIONS):
            job = MapReduceJob(
                _make_rank_map(ranks),
                _make_rank_reduce(num_pages, dangling_share),
                JobConf(
                    name=f"pagerank-iter{iteration}",
                    num_reduces=12,
                    map_cost_per_record=4e-6,
                    map_cost_per_byte=2e-8,
                    reduce_cost_per_record=2e-6,
                ),
            )
            result = engine.execute(
                job, graph, cluster=cluster, input_name=f"pr-in-{iteration}"
            )
            results.append(result)
            new_dangling = 0.0
            for page, value in result.output:
                if page == -1:
                    new_dangling = value[1]
                else:
                    ranks[page] = value[0]
            # Normalise drift from the dangling redistribution lag.
            total = sum(ranks.values())
            ranks = {p: r / total for p, r in ranks.items()}
            dangling_share = new_dangling
        return self._merge_results(
            self.info.name,
            results,
            ranks,
            iterations=self.ITERATIONS,
            pages=num_pages,
        )

    def uarch_profile(self) -> dict[str, Any]:
        return {
            "load_fraction": 0.32,
            "store_fraction": 0.10,
            "fp_fraction": 0.08,
            "regions": (
                # adjacency lists streamed per iteration (187 GB input —
                # the largest of the eleven)
                MemoryRegion("adjacency", 160 << 20, 0.25, "sequential"),
                # the rank vector: scattered by link structure (with the
                # preferential-attachment hot head) — the graph gather that
                # gives PageRank its L2 misses
                MemoryRegion("rank-vector", 32 << 20, 0.35, "random", burst=2,
                             hot_fraction=0.02, hot_weight=0.9),
            ),
            # shuffle-heavy iterations: more HDFS/network syscalls than most
            "kernel_fraction": 0.05,
            "branch_regularity": 0.96,
            # gather + accumulate: memory-latency-bound chains
            "dep_mean": 2.8,
            "dep_density": 0.74,
        }
