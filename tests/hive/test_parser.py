"""Tests for the SQL-subset parser."""

import pytest

from repro.hive.parser import (
    Aggregate,
    ColumnRef,
    HiveSyntaxError,
    parse_query,
)


class TestBasicSelect:
    def test_select_star(self):
        q = parse_query("SELECT * FROM t")
        assert q.table == "t"
        assert q.select_star
        assert not q.has_aggregation

    def test_select_columns(self):
        q = parse_query("SELECT a, b FROM t")
        assert [item.output_name() for item in q.items] == ["a", "b"]

    def test_qualified_columns(self):
        q = parse_query("SELECT t.a FROM t")
        assert q.items[0].expr == ColumnRef("a", table="t")

    def test_table_alias(self):
        q = parse_query("SELECT r.a FROM rankings r")
        assert q.table == "rankings"
        assert q.table_alias == "r"

    def test_column_alias(self):
        q = parse_query("SELECT a AS x FROM t")
        assert q.items[0].output_name() == "x"

    def test_keywords_case_insensitive(self):
        q = parse_query("select a from t where a > 1 group by a")
        assert q.table == "t"
        assert len(q.group_by) == 1

    def test_trailing_semicolon_ok(self):
        assert parse_query("SELECT * FROM t;").table == "t"


class TestWhere:
    def test_comparison_ops(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            q = parse_query(f"SELECT * FROM t WHERE a {op} 5")
            assert q.predicates[0].op == op
            assert q.predicates[0].value == 5

    def test_diamond_normalised(self):
        q = parse_query("SELECT * FROM t WHERE a <> 5")
        assert q.predicates[0].op == "!="

    def test_string_literal(self):
        q = parse_query("SELECT * FROM t WHERE name = 'bob'")
        assert q.predicates[0].value == "bob"

    def test_float_literal(self):
        q = parse_query("SELECT * FROM t WHERE x > 1.5")
        assert q.predicates[0].value == 1.5

    def test_negative_literal(self):
        q = parse_query("SELECT * FROM t WHERE x > -3")
        assert q.predicates[0].value == -3

    def test_like(self):
        q = parse_query("SELECT * FROM t WHERE s LIKE '%xyz%'")
        assert q.predicates[0].op == "like"
        assert q.predicates[0].value == "%xyz%"

    def test_and_chain(self):
        q = parse_query("SELECT * FROM t WHERE a > 1 AND b < 2 AND c = 'z'")
        assert len(q.predicates) == 3

    def test_escaped_quote_in_string(self):
        q = parse_query(r"SELECT * FROM t WHERE s = 'o\'brien'")
        assert q.predicates[0].value == "o'brien"


class TestAggregation:
    def test_sum_with_group_by(self):
        q = parse_query("SELECT k, SUM(v) FROM t GROUP BY k")
        assert q.has_aggregation
        assert q.aggregates[0].func == "sum"
        assert q.group_by == [ColumnRef("k")]

    def test_count_star(self):
        q = parse_query("SELECT COUNT(*) FROM t")
        agg = q.aggregates[0]
        assert agg.func == "count" and agg.arg is None

    def test_sum_star_rejected(self):
        with pytest.raises(HiveSyntaxError):
            parse_query("SELECT SUM(*) FROM t")

    def test_all_agg_functions(self):
        q = parse_query("SELECT SUM(a), COUNT(a), AVG(a), MIN(a), MAX(a) FROM t")
        assert [a.func for a in q.aggregates] == ["sum", "count", "avg", "min", "max"]

    def test_agg_alias(self):
        q = parse_query("SELECT SUM(v) AS total FROM t")
        assert q.aggregates[0].default_name() == "total"

    def test_agg_default_name(self):
        q = parse_query("SELECT SUM(v) FROM t")
        assert q.aggregates[0].default_name() == "sum(v)"

    def test_multi_column_group_by(self):
        q = parse_query("SELECT a, b, COUNT(*) FROM t GROUP BY a, b")
        assert len(q.group_by) == 2


class TestJoin:
    def test_join_on(self):
        q = parse_query(
            "SELECT r.a FROM rankings r JOIN uservisits uv ON r.url = uv.dest"
        )
        assert q.join.table == "uservisits"
        assert q.join.alias == "uv"
        assert q.join.left == ColumnRef("url", "r")
        assert q.join.right == ColumnRef("dest", "uv")

    def test_join_on_parenthesised(self):
        q = parse_query("SELECT a FROM x JOIN y ON (x.k = y.k)")
        assert q.join is not None


class TestOrderLimit:
    def test_order_asc_default(self):
        q = parse_query("SELECT a FROM t ORDER BY a")
        assert q.order_by.column == "a"
        assert not q.order_by.descending

    def test_order_desc(self):
        q = parse_query("SELECT a FROM t ORDER BY a DESC")
        assert q.order_by.descending

    def test_limit(self):
        q = parse_query("SELECT a FROM t LIMIT 10")
        assert q.limit == 10

    def test_qualified_order_target(self):
        q = parse_query("SELECT t.a FROM t ORDER BY t.a")
        assert q.order_by.column == "a"


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "",
            "INSERT INTO t VALUES (1)",
            "SELECT FROM t",
            "SELECT a",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t WHERE a >",
            "SELECT a FROM t GROUP a",
            "SELECT a FROM t LIMIT x",
            "SELECT a FROM t extra garbage ~~",
            "SELECT a FROM t WHERE s LIKE 5",
            "SELECT a FROM t WHERE a ! 5",
        ],
    )
    def test_rejects_bad_sql(self, sql):
        with pytest.raises(HiveSyntaxError):
            parse_query(sql)
