"""Tests for control-plane journaling: edit log, fsimage, checkpoint/restore.

The load-bearing property is the recovery contract: ``replay(fsimage,
edits)`` must reproduce the live namespace *exactly* — files, block
placement, placement cursor, dead-node set — after any prefix of an
arbitrary mutation schedule, including mid-sequence checkpoint rolls.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import JobWork, MapWork, ReduceWork, make_cluster
from repro.cluster.hdfs import Hdfs
from repro.cluster.journal import (
    EditLog,
    EditOp,
    NameNodeJournal,
    JobHistoryJournal,
    replay,
    restore_into,
    snapshot,
)
from repro.cluster.node import Node
from repro.mapreduce.engine import LocalEngine


def make_hdfs(n_nodes=4, block_size=1024, replication=3):
    nodes = [Node(f"n{i}") for i in range(n_nodes)]
    return Hdfs(nodes, block_size=block_size, replication=replication)


def namespace_state(hdfs: Hdfs) -> tuple:
    """Everything the recovery contract promises to reproduce."""
    return (
        {name: tuple(f.blocks) for name, f in hdfs.files.items()},
        hdfs._placement_cursor,
        hdfs.dead_nodes,
        hdfs.total_stored_bytes(),
        hdfs.under_replicated_blocks,
    )


class TestEditLog:
    def test_append_assigns_monotonic_txids(self):
        log = EditLog()
        a = log.append("create_file", "f", 100)
        b = log.append("delete_file", "f")
        assert (a.txid, b.txid) == (1, 2)
        assert log.last_txid == 2
        assert len(log) == 2

    def test_since_and_truncate(self):
        log = EditLog()
        for i in range(5):
            log.append("create_file", f"f{i}", 10)
        assert [op.txid for op in log.since(3)] == [4, 5]
        log.truncate_through(3)
        assert [op.txid for op in log.ops] == [4, 5]
        # txids keep counting after truncation — they are never reused.
        assert log.append("delete_file", "f0").txid == 6

    def test_rejects_unknown_ops_and_bad_txids(self):
        with pytest.raises(ValueError):
            EditOp(1, "format_namenode", ())
        with pytest.raises(ValueError):
            EditOp(0, "create_file", ("f", 10))
        with pytest.raises(ValueError):
            EditLog(first_txid=0)


class TestSnapshotRestore:
    def test_roundtrip_restores_namespace_exactly(self):
        hdfs = make_hdfs(block_size=64)
        hdfs.create_file("a", 64 * 3)
        hdfs.fail_node("n1")
        image = snapshot(hdfs, txid=7)
        before = namespace_state(hdfs)

        hdfs.create_file("b", 64 * 5)
        hdfs.delete_file("a")
        hdfs.fail_node("n2")
        assert namespace_state(hdfs) != before

        restore_into(hdfs, image)
        assert namespace_state(hdfs) == before
        assert image.txid == 7
        assert image.file_names() == ("a",)

    def test_restore_rejects_foreign_fsimage(self):
        image = snapshot(make_hdfs(n_nodes=6))
        with pytest.raises(ValueError):
            restore_into(make_hdfs(n_nodes=4), image)

    def test_restore_does_not_write_the_edit_log(self):
        hdfs = make_hdfs(block_size=64)
        journal = NameNodeJournal(hdfs)
        hdfs.create_file("a", 64)
        edits_before = len(journal.edits)
        restore_into(hdfs, journal.fsimage)
        assert len(journal.edits) == edits_before


def apply_schedule(hdfs: Hdfs, schedule, created: int = 0) -> int:
    """Drive a mutation schedule through the real namespace API.

    Returns the running count of created files so prefixes can be applied
    incrementally without colliding on file names.
    """
    for kind, arg in schedule:
        if kind == "create":
            hdfs.create_file(f"f{created}", arg)
            created += 1
        elif kind == "delete":
            names = sorted(hdfs.files)
            if names:
                hdfs.delete_file(names[arg % len(names)])
        elif kind == "fail":
            live = hdfs.live_node_names()
            if len(live) > 1:  # keep at least one datanode alive
                hdfs.fail_node(live[arg % len(live)])
        elif kind == "rereplicate":
            under = [
                block
                for hfile in hdfs.files.values()
                for block in hfile.blocks
                if 0 < len(block.replicas) < hdfs.replication
            ]
            if under:
                hdfs.re_replicate_block(under[arg % len(under)])
    return created


schedule_strategy = st.lists(
    st.tuples(
        st.sampled_from(["create", "delete", "fail", "rereplicate"]),
        st.integers(min_value=0, max_value=2000),
    ),
    min_size=1,
    max_size=24,
)


class TestReplayContract:
    @given(schedule=schedule_strategy)
    @settings(max_examples=60, deadline=None)
    def test_replay_reconstructs_any_schedule_prefix(self, schedule):
        # Property: for every prefix of an arbitrary op schedule, the
        # journal's fsimage + outstanding edits replay to the exact live
        # namespace.  A tiny checkpoint interval forces rolls inside the
        # sequence, so the merge path is exercised too.
        hdfs = make_hdfs(block_size=256)
        journal = NameNodeJournal(hdfs, checkpoint_interval_ops=5)
        created = 0
        for step in schedule:
            created = apply_schedule(hdfs, [step], created)
            recovered = journal.recover()
            assert namespace_state(recovered) == namespace_state(hdfs)

    @given(schedule=schedule_strategy, interval=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_checkpoint_interval_never_changes_recovery(self, schedule, interval):
        live = make_hdfs(block_size=256)
        NameNodeJournal(live, checkpoint_interval_ops=interval)
        apply_schedule(live, schedule)
        recovered = live.journal.recover()
        assert namespace_state(recovered) == namespace_state(live)

    def test_roll_merges_and_truncates(self):
        hdfs = make_hdfs(block_size=64)
        journal = NameNodeJournal(hdfs, checkpoint_interval_ops=3)
        hdfs.create_file("a", 64)
        hdfs.create_file("b", 64)
        assert journal.rolls == 0 and len(journal.edits) == 2
        hdfs.create_file("c", 64)  # third edit triggers the roll
        assert journal.rolls == 1
        assert len(journal.edits) == 0
        assert journal.fsimage.txid == 3
        assert journal.fsimage.file_names() == ("a", "b", "c")
        assert namespace_state(journal.recover()) == namespace_state(hdfs)

    def test_journal_counts_into_procfs(self):
        cluster = make_cluster(4, block_size=1024)
        cluster.hdfs.create_file("f", 4096)
        assert cluster.master.procfs.journal_edits == 1
        assert "journal_edits 1" in cluster.master.procfs.render_control_plane()


def balanced_work(maps=8, reduces=2, slaves=4) -> JobWork:
    return JobWork(
        "job",
        maps=[
            MapWork(1 << 18, 0.2, 1 << 18, preferred_nodes=(f"slave{i % slaves + 1}",))
            for i in range(maps)
        ],
        reduces=[ReduceWork(1 << 19, 0.1, 1 << 18) for _ in range(reduces)],
    )


class TestJournalingIsObservationallyFree:
    def test_timelines_identical_with_and_without_journaling(self):
        # Journaling is pure bookkeeping — it must not perturb the
        # simulated timeline by a single bit.
        runs = {}
        for journaling in (True, False):
            cluster = make_cluster(4, block_size=64 * 1024, journaling=journaling)
            cluster.hdfs.create_file("input", 1 << 20)
            timeline = cluster.run_job(balanced_work())
            runs[journaling] = timeline
        on, off = runs[True], runs[False]
        assert on.start_s == off.start_s
        assert on.map_phase_end_s == off.map_phase_end_s
        assert on.end_s == off.end_s
        assert on.network_bytes == off.network_bytes
        assert on.disk_writes_per_second == off.disk_writes_per_second


class TestClusterCheckpoint:
    def test_restore_then_rerun_is_bit_identical(self):
        cluster = make_cluster(4, block_size=64 * 1024)
        cluster.hdfs.create_file("input", 1 << 20)
        cluster.run_job(balanced_work())
        cp = cluster.checkpoint()

        first = cluster.run_job(balanced_work(maps=6, reduces=3))
        clock_after = cluster.clock
        edits_after = len(cluster.journal.edits)

        cluster.restore(cp)
        assert cluster.clock == cp.clock
        second = cluster.run_job(balanced_work(maps=6, reduces=3))
        assert second.start_s == first.start_s
        assert second.map_phase_end_s == first.map_phase_end_s
        assert second.end_s == first.end_s
        assert second.network_bytes == first.network_bytes
        assert second.disk_writes_per_second == first.disk_writes_per_second
        assert cluster.clock == clock_after
        assert len(cluster.journal.edits) == edits_after

    def test_restore_preserves_object_identity(self):
        cluster = make_cluster(2, block_size=1024)
        hdfs = cluster.hdfs
        slave = cluster.slaves[0]
        cp = cluster.checkpoint()
        cluster.hdfs.create_file("f", 4096)
        cluster.restore(cp)
        assert cluster.hdfs is hdfs
        assert cluster.slaves[0] is slave
        assert "f" not in cluster.hdfs.files

    def test_restore_rejects_foreign_checkpoint(self):
        cp = make_cluster(2).checkpoint()
        with pytest.raises(ValueError):
            make_cluster(4).restore(cp)

    def test_journaling_false_checkpoints_without_journal(self):
        cluster = make_cluster(2, journaling=False)
        assert cluster.journal is None
        cp = cluster.checkpoint()
        assert cp.journal_state is None
        cluster.hdfs.create_file("f", 4096)
        cluster.restore(cp)
        assert "f" not in cluster.hdfs.files


class TestEngineCheckpoint:
    def test_auto_input_names_resume_deterministically(self):
        engine = LocalEngine()
        cluster = make_cluster(2, block_size=1024)
        records = [(i, "x" * 32) for i in range(64)]
        from repro.mapreduce.job import JobConf, MapReduceJob

        job = MapReduceJob(
            mapper=lambda k, v: [(k % 2, 1)],
            reducer=lambda k, vs: [(k, sum(vs))],
            conf=JobConf(name="identity", num_reduces=1),
        )
        cp_engine = engine.checkpoint()
        cp_cluster = cluster.checkpoint()
        first = engine.execute(job, records, cluster=cluster)
        engine.restore(cp_engine)
        cluster.restore(cp_cluster)
        second = engine.execute(job, records, cluster=cluster)
        # Same auto-generated HDFS input name, same placement, same timing.
        assert first.output == second.output
        assert first.timeline.end_s == second.timeline.end_s
        assert sorted(cluster.hdfs.files) == ["auto-input-0"]


class TestJobHistoryJournal:
    def test_records_and_filters_completions(self):
        history = JobHistoryJournal()
        history.record_completion("map", "m_000000", "slave1", 0.0, 1.0)
        history.record_completion("map", "m_000001", "slave2", 0.0, 3.0)
        history.record_completion("reduce", "r_000000", "slave1", 3.0, 4.0)
        done = history.completed_maps_before(2.0)
        assert [e.task_id for e in done] == ["m_000000"]
        assert len(history) == 3
        history.clear()
        assert len(history) == 0

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            JobHistoryJournal().record_completion("setup", "t", "n", 0.0, 1.0)
