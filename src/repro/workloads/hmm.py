"""HMM — Table I row 9 (the paper's own implementation).

Word segmentation with a hidden Markov model (the paper's motivating case
is Chinese segmentation: "a statistical Markov model in which the system
being modeled is assumed to be a Markov process with unobserved hidden
states").  Two phases:

1. **train**: a MapReduce job counts initial/transition/emission
   frequencies over a labelled corpus (BMES tags);
2. **segment**: a map-only job runs Viterbi decoding over unlabelled
   character streams and splits them at E/S tags.
"""

from __future__ import annotations

import math
from typing import Any

from repro.cluster.cluster import HadoopCluster
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import JobConf, MapReduceJob
from repro.uarch.trace import MemoryRegion
from repro.workloads import datagen
from repro.workloads.base import DataAnalysisWorkload, WorkloadInfo, WorkloadRun, register
from repro.workloads.datagen import HMM_STATES


def _train_map(_sid, chars_tags):
    chars, tags = chars_tags
    if not tags:
        return
    yield ("init", tags[0], ""), 1
    for i, tag in enumerate(tags):
        yield ("emit", tag, chars[i]), 1
        if i + 1 < len(tags):
            yield ("trans", tag, tags[i + 1]), 1


def _sum_reduce(key, counts):
    yield key, sum(counts)


class HmmModel:
    """Log-space HMM with Laplace smoothing."""

    def __init__(self, counts: dict, alphabet: list[str], alpha: float = 0.5):
        self.states = HMM_STATES
        self.alphabet = list(alphabet)
        init = {s: 0 for s in self.states}
        trans = {s: {t: 0 for t in self.states} for s in self.states}
        emit = {s: {} for s in self.states}
        for key, count in counts.items():
            kind, a, b = key
            if kind == "init":
                init[a] += count
            elif kind == "trans":
                trans[a][b] += count
            elif kind == "emit":
                emit[a][b] = emit[a].get(b, 0) + count
        v = len(self.alphabet) or 1
        n = len(self.states)
        total_init = sum(init.values())
        self.log_init = {
            s: math.log((init[s] + alpha) / (total_init + alpha * n)) for s in self.states
        }
        self.log_trans = {}
        for s in self.states:
            total = sum(trans[s].values())
            self.log_trans[s] = {
                t: math.log((trans[s][t] + alpha) / (total + alpha * n)) for t in self.states
            }
        self.log_emit = {}
        for s in self.states:
            total = sum(emit[s].values())
            self.log_emit[s] = {
                ch: math.log((emit[s].get(ch, 0) + alpha) / (total + alpha * v))
                for ch in self.alphabet
            }
            self.log_emit[s]["__unk__"] = math.log(alpha / (total + alpha * v))

    def emit_logp(self, state: str, ch: str) -> float:
        table = self.log_emit[state]
        return table.get(ch, table["__unk__"])

    def viterbi(self, chars: str) -> str:
        """Most likely BMES tag sequence for *chars*."""
        if not chars:
            return ""
        states = self.states
        score = {s: self.log_init[s] + self.emit_logp(s, chars[0]) for s in states}
        back: list[dict[str, str]] = []
        for ch in chars[1:]:
            new_score = {}
            pointers = {}
            for t in states:
                best_prev, best_val = None, -math.inf
                for s in states:
                    val = score[s] + self.log_trans[s][t]
                    if val > best_val:
                        best_prev, best_val = s, val
                new_score[t] = best_val + self.emit_logp(t, ch)
                pointers[t] = best_prev
            score = new_score
            back.append(pointers)
        last = max(score, key=score.get)
        tags = [last]
        for pointers in reversed(back):
            last = pointers[last]
            tags.append(last)
        return "".join(reversed(tags))


def segment(chars: str, tags: str) -> list[str]:
    """Split *chars* into words at E/S boundaries."""
    words = []
    current = ""
    for ch, tag in zip(chars, tags):
        current += ch
        if tag in ("E", "S"):
            words.append(current)
            current = ""
    if current:
        words.append(current)
    return words


def _make_segment_map(model: HmmModel):
    def segment_map(sid, chars_tags):
        chars, true_tags = chars_tags
        predicted = model.viterbi(chars)
        yield sid, (true_tags, predicted)

    return segment_map


@register
class HmmWorkload(DataAnalysisWorkload):
    info = WorkloadInfo(
        name="HMM",
        input_description="147 GB html file",
        input_gb_low=147,
        retired_instructions_1e9=1841,
        source="our implementation",
        scenarios=(
            ("social network", "Speech recognition"),
            ("search engine", "Word Segmentation / Handwriting recognition"),
        ),
        table1_row=9,
    )

    BASE_SENTENCES = 1200

    def run(
        self,
        scale: float = 1.0,
        cluster: HadoopCluster | None = None,
        engine: LocalEngine | None = None,
    ) -> WorkloadRun:
        engine = engine or LocalEngine()
        corpus = datagen.generate_segmented_corpus(max(4, int(self.BASE_SENTENCES * scale)))
        split = int(len(corpus) * 0.8)
        train, test = corpus[:split], corpus[split:]
        alphabet = sorted({ch for _, (chars, _) in corpus for ch in chars})

        train_job = MapReduceJob(
            _train_map,
            _sum_reduce,
            JobConf(name="hmm-train", num_reduces=8,
                    map_cost_per_record=8e-6, reduce_cost_per_record=1e-6),
            combiner=_sum_reduce,
        )
        train_result = engine.execute(
            train_job, train, cluster=cluster, input_name="hmm-train-input"
        )
        model = HmmModel(dict(train_result.output), alphabet)

        segment_job = MapReduceJob(
            _make_segment_map(model),
            None,
            JobConf(name="hmm-segment", num_reduces=0,
                    # Viterbi: |S|^2 transitions per character.
                    map_cost_per_record=3e-5, map_cost_per_byte=5e-8),
        )
        segment_result = engine.execute(
            segment_job, test, cluster=cluster, input_name="hmm-test-input"
        )
        total = correct = 0
        for _sid, (truth, predicted) in segment_result.output:
            for a, b in zip(truth, predicted):
                total += 1
                correct += a == b
        accuracy = correct / total if total else 0.0
        return self._merge_results(
            self.info.name,
            [train_result, segment_result],
            dict(segment_result.output),
            tag_accuracy=accuracy,
            sentences=len(corpus),
        )

    def uarch_profile(self) -> dict[str, Any]:
        return {
            # Viterbi: FP adds/compares over small log-prob tables.
            "load_fraction": 0.30,
            "store_fraction": 0.08,
            "fp_fraction": 0.15,
            "regions": (
                MemoryRegion("char-stream", 96 << 20, 0.18, "sequential"),
                # 4x4 transitions + |alphabet| emissions: easily cache-resident
                MemoryRegion("hmm-tables", 512 << 10, 0.8, "random", burst=4,
                             hot_fraction=0.3, hot_weight=0.9),
                # per-sentence trellis, reused in place
                MemoryRegion("trellis", 256 << 10, 0.4, "sequential"),
            ),
            "kernel_fraction": 0.025,
            # fixed 4-state loops: extremely regular control flow
            "loop_branch_fraction": 0.65,
            "mean_trip_count": 8.0,
            "branch_regularity": 0.985,
            # max-reductions serialise mildly
            "dep_mean": 3.2,
            "dep_density": 0.66,
        }
