"""Ablation: LLC capacity sweep.

The paper's §IV-D implication: "Modern processors dedicate approximately
half of the die area for caches, and hence optimizing the LLC capacity
properly will improve the energy-efficiency of processor and save the die
area."  This sweep quantifies it: the L3-hit ratio of L2 misses for
data-analysis and service workloads saturates well before the full 12 MB
— a smaller LLC would serve them nearly as well — while halving it twice
starts to hurt.
"""

from dataclasses import replace

from conftest import run_once

from repro.core import DCBench, characterize
from repro.uarch.config import CacheConfig, scaled_machine

WORKLOADS = ["WordCount", "PageRank", "Data Serving"]

#: L3 sizes as fractions of the (scaled) Table III 12 MB.
FRACTIONS = (0.25, 0.5, 1.0, 2.0)


def test_llc_sweep(benchmark):
    suite = DCBench.default()
    base = scaled_machine(8)

    def harness():
        results: dict[str, dict[float, tuple[float, float]]] = {}
        for name in WORKLOADS:
            entry = suite.entry(name)
            per_size = {}
            for fraction in FRACTIONS:
                l3 = replace(base.l3, size_bytes=int(base.l3.size_bytes * fraction))
                machine = replace(base, l3=l3)
                c = characterize(entry, instructions=120_000, machine=machine)
                per_size[fraction] = (c.metrics.l3_hit_ratio_of_l2_misses, c.metrics.ipc)
            results[name] = per_size
        return results

    results = run_once(benchmark, harness)
    print()
    print("Ablation: LLC capacity sweep (fraction of Table III 12 MB)")
    header = f"{'workload':<14s}" + "".join(f"{f:>16.2f}x" for f in FRACTIONS)
    print(header)
    for name, per_size in results.items():
        row = f"{name:<14s}" + "".join(
            f"  l3r={per_size[f][0]:>4.0%} ipc={per_size[f][1]:.2f}" for f in FRACTIONS
        )
        print(row)

    for name, per_size in results.items():
        ratios = [per_size[f][0] for f in FRACTIONS]
        # More LLC never hurts the hit ratio materially...
        for a, b in zip(ratios, ratios[1:]):
            assert b >= a - 0.08, f"{name}: L3 ratio fell when growing the LLC"
        # ... and doubling beyond Table III buys almost nothing (the
        # paper's "LLC is large enough" observation).
        assert per_size[2.0][0] - per_size[1.0][0] < 0.15
