"""Out-of-order back-end resource models.

The back end is modelled with occupancy trackers: each buffered structure
(reservation station, re-order buffer, load buffer, store buffer) admits a
micro-op only when an entry is free, and entries are released at known
times (issue for the RS, retire for the ROB, completion for the load
buffer, drain for the store buffer).  :class:`BufferTracker` implements the
generic "capacity + release heap" mechanism; the ROB, being strictly FIFO,
uses the cheaper :class:`RingTracker`.

These trackers produce the paper's Figure 6 back-end stall categories:
dispatch blocked on a full RS/ROB/load buffer/store buffer.
"""

from __future__ import annotations

import heapq

from repro.uarch.isa import DEFAULT_LATENCY, OpClass


class BufferTracker:
    """Occupancy tracker for an unordered buffer (RS, load/store buffers).

    Entries are (release_time) items in a min-heap.  ``earliest_slot(now)``
    returns the earliest cycle at which a free entry exists at or after
    *now*; ``occupy(release_time)`` claims the slot.
    """

    __slots__ = ("capacity", "_heap")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._heap: list[int] = []

    def earliest_slot(self, now: int) -> int:
        """Earliest cycle ≥ *now* with a free entry (entries freeing at
        cycle t are reusable at t)."""
        heap = self._heap
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        if len(heap) < self.capacity:
            return now
        # Buffer full: the next entry to free gates dispatch.
        release = heap[0]
        while heap and heap[0] <= release:
            heapq.heappop(heap)
        return release

    def occupy(self, release_time: int) -> None:
        heapq.heappush(self._heap, release_time)

    @property
    def occupancy(self) -> int:
        return len(self._heap)

    def clear(self) -> None:
        self._heap.clear()


class RingTracker:
    """FIFO occupancy tracker for the ROB.

    Because the ROB allocates and frees strictly in program order, the
    release time of the entry that op *i* reuses is the retire time of op
    ``i - capacity`` — a ring buffer of retire times suffices.
    """

    __slots__ = ("capacity", "_ring", "_count")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring = [0] * capacity
        self._count = 0

    def earliest_slot(self, now: int) -> int:
        if self._count < self.capacity:
            return now
        return max(now, self._ring[self._count % self.capacity])

    def push_release(self, release_time: int) -> None:
        self._ring[self._count % self.capacity] = release_time
        self._count += 1


class ExecutionModel:
    """Execution latencies per op class (non-memory part)."""

    __slots__ = ("latencies",)

    def __init__(self, latencies: dict[OpClass, int] | None = None) -> None:
        self.latencies = dict(DEFAULT_LATENCY)
        if latencies:
            self.latencies.update(latencies)

    def latency(self, op: OpClass) -> int:
        return self.latencies[op]
