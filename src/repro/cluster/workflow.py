"""Event-driven DAG workflows with lineage-based recovery.

The paper's workloads are not isolated jobs: Hive-bench queries compile
to chained MapReduce stages, and the iterative analytics (K-means,
PageRank, HMM, IBCF) are convergence loops over intermediate HDFS state.
This module adds the orchestration layer above
:class:`~repro.cluster.scheduler.MultiJobCluster` that production
multi-stage pipelines need:

* :class:`Stage` / :class:`Workflow` — a DAG of named stages with
  arbitrary fan-in/fan-out; each stage's cross-stage data dependency is
  an HDFS path (its upstream stages' committed outputs), and each stage
  carries a :class:`StagePolicy` retry budget.
* :class:`WorkflowRunner` — level-synchronized execution: every wave of
  ready stages runs as one mix on the shared cluster, and the runner
  reacts to outcomes through the workflow event bus.  Its robustness
  repertoire:

  - **retries-as-events** — a failed stage is re-submitted under
    bounded exponential backoff (``stage-retry`` events), a budget
    *distinct from* task-attempt retries inside the stage;
  - **lineage-based recomputation** — each stage records its
    input/output lineage as HDFS files; when faults destroy every
    replica of a completed stage's output before a consumer reads it,
    the runner re-executes the *minimal* upstream subgraph (``heal``
    events) instead of raising
    :class:`~repro.cluster.attempts.DataLossError`;
  - **failure propagation** — a stage that exhausts its retry budget
    cancels exactly its downstream cone; independent branches run to
    completion;
  - **workflow checkpoints** — stage commits ride on
    :class:`~repro.cluster.journal.WorkflowJournal`, so a JobTracker
    crash mid-DAG resumes from the journal re-running zero completed
    stages (asserted via :class:`WorkflowAccounting`).

Like the shadow-run idiom in :mod:`repro.cluster.tenancy`, a stage's
*functional* output is its ``payload`` (computed fault-free at DAG build
time); the cluster models *when* stages finish and *whether* their data
survives.  A workflow "produces bit-identical outputs under faults" when
every sink commits the same payload the fault-free run commits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.cluster.attempts import RetryPolicy
from repro.cluster.cluster import HadoopCluster, JobWork
from repro.cluster.eventbus import (
    EVENT_CHECKPOINT,
    EVENT_HEAL,
    EVENT_JOB_CANCELLED,
    EVENT_JOB_FINISHED,
    EVENT_STAGE_FAILED,
    EVENT_STAGE_READY,
    EVENT_STAGE_RETRY,
    EVENT_SUBMIT,
    EventBus,
)
from repro.cluster.faults import FaultPlan
from repro.cluster.journal import WorkflowJournal, WorkflowStageRecord
from repro.cluster.scheduler import MultiJobCluster, Scheduler, make_scheduler

__all__ = [
    "StagePolicy",
    "Stage",
    "Workflow",
    "WorkflowFaultPlan",
    "WorkflowAccounting",
    "StageReport",
    "WorkflowResult",
    "WorkflowCheckpoint",
    "WorkflowRunner",
    "workflow_from_chain",
    "build_workflow",
    "WORKFLOW_DAGS",
]


@dataclass(frozen=True)
class StagePolicy:
    """Stage-level retry budget (distinct from task-attempt retries).

    A stage that fails permanently at the job level (every task-attempt
    budget inside it exhausted, or no live node) may be re-executed as a
    whole up to *max_retries* times, waiting ``backoff_s *
    backoff_factor**k`` before re-submission — the orchestrator-level
    analogue of ``mapred.map.max.attempts``.
    """

    max_retries: int = 2
    backoff_s: float = 1.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if not (self.backoff_s >= 0 and math.isfinite(self.backoff_s)):
            raise ValueError("backoff_s must be finite and non-negative")
        if not (self.backoff_factor >= 1 and math.isfinite(self.backoff_factor)):
            raise ValueError("backoff_factor must be at least 1")

    def retry_delay_s(self, failures: int) -> float:
        """Backoff before re-submission after the *failures*-th failure."""
        if failures < 1:
            raise ValueError("retry delay is defined after at least one failure")
        return self.backoff_s * self.backoff_factor ** (failures - 1)


@dataclass(frozen=True)
class Stage:
    """One DAG node: a MapReduce job plus its data-dependency edges.

    ``deps`` names upstream stages; the stage's inputs are their
    ``output`` HDFS paths.  ``payload`` is the stage's functional result
    (the shadow-run idiom); ``output_bytes`` sizes the committed HDFS
    output file for the lineage model.
    """

    name: str
    work: JobWork
    deps: tuple[str, ...] = ()
    output: str = ""
    output_bytes: int = 0
    payload: object = None
    policy: StagePolicy = StagePolicy()
    user: str = "default"
    pool: str = "default"

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.strip():
            raise ValueError("stage name must be a non-empty trimmed string")
        if len(set(self.deps)) != len(self.deps):
            raise ValueError(f"stage {self.name!r} lists a duplicate dependency")
        if self.name in self.deps:
            raise ValueError(f"stage {self.name!r} depends on itself")
        if self.output_bytes < 0:
            raise ValueError("output_bytes must be non-negative")
        if not self.output:
            object.__setattr__(self, "output", f"wf/{self.name}.out")
        if not self.output_bytes:
            work = self.work
            size = sum(r.output_bytes for r in work.reduces) or sum(
                m.output_bytes for m in work.maps
            )
            object.__setattr__(self, "output_bytes", max(size, 1))


class Workflow:
    """A named, validated DAG of :class:`Stage` nodes.

    Validation happens at construction: unique stage names, known
    dependencies, unique output paths, and acyclicity (a topological
    order is computed once and drives every runner iteration, so
    execution order is deterministic).
    """

    def __init__(self, name: str, stages) -> None:
        if not name or name != name.strip():
            raise ValueError("workflow name must be a non-empty trimmed string")
        stages = list(stages)
        if not stages:
            raise ValueError("a workflow needs at least one stage")
        self.name = name
        self.stages: dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self.stages:
                raise ValueError(f"duplicate stage {stage.name!r}")
            self.stages[stage.name] = stage
        outputs = [s.output for s in stages]
        if len(set(outputs)) != len(outputs):
            raise ValueError("stage output paths must be unique")
        for stage in stages:
            for dep in stage.deps:
                if dep not in self.stages:
                    raise ValueError(
                        f"stage {stage.name!r} depends on unknown stage {dep!r}"
                    )
        self.order = self._topo_order()

    def _topo_order(self) -> tuple[str, ...]:
        # Kahn's algorithm, stable in declaration order.
        indegree = {name: len(s.deps) for name, s in self.stages.items()}
        ready = [name for name in self.stages if indegree[name] == 0]
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for other, stage in self.stages.items():
                if name in stage.deps:
                    indegree[other] -= 1
                    if indegree[other] == 0:
                        ready.append(other)
        if len(order) != len(self.stages):
            cyclic = sorted(set(self.stages) - set(order))
            raise ValueError(f"workflow has a dependency cycle through {cyclic}")
        return tuple(order)

    def stage(self, name: str) -> Stage:
        try:
            return self.stages[name]
        except KeyError:
            raise KeyError(f"no such stage: {name!r}") from None

    def sources(self) -> tuple[str, ...]:
        return tuple(n for n in self.order if not self.stages[n].deps)

    def sinks(self) -> tuple[str, ...]:
        consumed = {dep for s in self.stages.values() for dep in s.deps}
        return tuple(n for n in self.order if n not in consumed)

    def consumers_of(self, name: str) -> tuple[str, ...]:
        self.stage(name)
        return tuple(
            n for n in self.order if name in self.stages[n].deps
        )

    def downstream_cone(self, name: str) -> tuple[str, ...]:
        """Every stage that transitively depends on *name* (excluded)."""
        self.stage(name)
        cone: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for consumer in self.consumers_of(current):
                if consumer not in cone:
                    cone.add(consumer)
                    frontier.append(consumer)
        return tuple(n for n in self.order if n in cone)

    def upstream_closure(self, name: str) -> tuple[str, ...]:
        """Every stage *name* transitively depends on (excluded)."""
        closure: set[str] = set()
        frontier = list(self.stage(name).deps)
        while frontier:
            current = frontier.pop()
            if current not in closure:
                closure.add(current)
                frontier.extend(self.stage(current).deps)
        return tuple(n for n in self.order if n in closure)

    def __len__(self) -> int:
        return len(self.stages)


@dataclass(frozen=True)
class WorkflowFaultPlan:
    """The fault schedule a workflow run honours.

    Times are relative to the workflow's start (the cluster clock when
    :meth:`WorkflowRunner.run` is entered).  Attributes:

    * ``node_crashes`` — fail-stop ``(node, at_s)`` crashes; the dead
      node's HDFS replicas drop, which is what makes stage outputs
      losable.
    * ``partitions`` — ``(node, start_s, duration_s)`` network splits.
    * ``destroy_outputs`` — stage names whose committed output loses
      *every* replica immediately after the stage completes (the
      pathological window lineage recomputation exists for).
    * ``fail_stages`` — ``(stage, n)`` injected stage-commit failures:
      the stage's first *n* executions are failed at commit, exercising
      the stage-retry budget (and, when ``n`` exceeds it, permanent
      failure + downstream cancellation) deterministically.
    * ``master_crash_after`` — crash the JobTracker right after this
      stage's wave commits; the runner resumes the half-finished DAG
      from its :class:`~repro.cluster.journal.WorkflowJournal`.
    """

    node_crashes: tuple[tuple[str, float], ...] = ()
    partitions: tuple[tuple[str, float, float], ...] = ()
    destroy_outputs: tuple[str, ...] = ()
    fail_stages: tuple[tuple[str, int], ...] = ()
    master_crash_after: str | None = None
    seed: int = 0
    policy: RetryPolicy = RetryPolicy()

    def __post_init__(self) -> None:
        for name, at in self.node_crashes:
            if not name or not math.isfinite(at) or at < 0:
                raise ValueError("node crashes need a node and a finite time >= 0")
        for name, start, duration in self.partitions:
            if not name or not math.isfinite(start) or start < 0:
                raise ValueError("partitions need a node and a start >= 0")
            if not math.isfinite(duration) or duration <= 0:
                raise ValueError("partition duration must be positive")
        for stage, n in self.fail_stages:
            if not stage or n < 1:
                raise ValueError("fail_stages entries need a stage and n >= 1")
        if len({s for s, _ in self.fail_stages}) != len(self.fail_stages):
            raise ValueError("duplicate stage in fail_stages")


@dataclass
class WorkflowAccounting:
    """What the orchestrator did during one workflow run."""

    waves: int = 0
    stages_run: int = 0
    stage_retries: int = 0
    lineage_recomputes: int = 0
    stages_cancelled: int = 0
    stages_failed: int = 0
    checkpoints: int = 0
    master_crashes: int = 0
    #: completed stages a post-crash resume recovered from the journal
    #: instead of re-running (the zero-re-runs acceptance criterion)
    stages_recovered: int = 0
    injected_stage_failures: int = 0
    destroyed_outputs: int = 0
    # task-level fault work aggregated over the per-wave mixes
    killed_attempts: int = 0
    zombies_fenced: int = 0
    maps_reexecuted: int = 0
    reduces_reexecuted: int = 0
    wasted_task_seconds: float = 0.0

    def to_dict(self) -> dict:
        return dict(vars(self))


@dataclass
class StageReport:
    """Accounting for one stage of a workflow run."""

    stage: str
    status: str  # "completed" | "failed" | "cancelled"
    executions: int  # times the stage's job actually ran (retries + heals)
    retries: int
    recomputes: int
    first_launch_s: float | None
    finished_s: float | None
    output: str
    cancelled_by: str | None = None

    def to_dict(self) -> dict:
        return dict(vars(self))


@dataclass(frozen=True)
class WorkflowCheckpoint:
    """Durable workflow progress: the journal's view of committed stages.

    Bundles what a restarted JobTracker needs to resume the DAG: which
    stages committed (with times and outputs).  The data itself is
    already durable in HDFS — the checkpoint is control-plane state
    only, which is why taking one is observationally free.
    """

    workflow: str
    records: tuple[WorkflowStageRecord, ...]


@dataclass
class WorkflowResult:
    """Everything :meth:`WorkflowRunner.run` produced."""

    workflow: str
    scheduler: str
    status: str  # "completed" | "partial"
    reports: list[StageReport]
    outputs: dict[str, object]  # completed sink payloads
    end_s: float
    accounting: WorkflowAccounting
    events: tuple = ()

    def report(self, stage: str) -> StageReport:
        for report in self.reports:
            if report.stage == stage:
                return report
        raise KeyError(stage)

    def to_dict(self) -> dict:
        return {
            "workflow": self.workflow,
            "scheduler": self.scheduler,
            "status": self.status,
            "stages": [report.to_dict() for report in self.reports],
            "outputs": dict(self.outputs),
            "end_s": self.end_s,
            "accounting": self.accounting.to_dict(),
            "events": len(self.events),
        }


class WorkflowRunner:
    """Execute a :class:`Workflow` on one cluster, surviving faults.

    Level-synchronized waves: each wave submits every currently-ready
    stage into a fresh :class:`MultiJobCluster` over the *shared*
    cluster (the clock carries across waves), under the runner's
    scheduler and the wave-relevant slice of the
    :class:`WorkflowFaultPlan`.  Between waves the runner applies
    fault-plan HDFS effects (crashed datanodes, destroyed outputs),
    checks lineage, heals, retries, cancels, checkpoints.

    ``observe=False`` disables the ProcFs workflow counters on the
    master; recording is pure bookkeeping, so observed and unobserved
    runs are bit-identical (asserted by the tests).
    """

    def __init__(
        self,
        cluster: HadoopCluster,
        scheduler: Scheduler | str | None = None,
        plan: WorkflowFaultPlan | None = None,
        observe: bool = True,
    ) -> None:
        self.cluster = cluster
        if isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler)
        self.scheduler = scheduler
        self.plan = plan
        self.observe = observe
        self.bus = EventBus()
        self.journal = WorkflowJournal()
        self.accounting = WorkflowAccounting()
        self.last_checkpoint: WorkflowCheckpoint | None = None
        self._ran = False

    # -- small helpers ---------------------------------------------------------

    def _record(self, counter: str) -> None:
        """Bump a master ProcFs workflow counter (gated by ``observe``)."""
        if self.observe:
            getattr(self.cluster.master.procfs, f"record_{counter}")()

    def _scheduler(self) -> Scheduler:
        # A Scheduler instance keeps per-run state and MultiJobCluster
        # resets it, so one instance is safely reused across waves.
        if self.scheduler is None:
            self.scheduler = make_scheduler("fifo")
        return self.scheduler

    def _wave_fault_plan(self, wave_origin: float) -> FaultPlan | None:
        """The plan slice relevant from *wave_origin* on, re-based to it.

        Crash times may re-base negative (the node died in an earlier
        wave and stays dead); partitions fully in the past are dropped
        and straddling ones are clipped to the wave origin.
        """
        if self.plan is None:
            return None
        # A node crashed in an earlier wave re-bases to 0: dead from the
        # wave's first instant (FaultPlan rejects negative times).
        crashes = tuple(
            (name, max(0.0, self._origin + at - wave_origin))
            for name, at in self.plan.node_crashes
        )
        partitions = []
        for name, start, duration in self.plan.partitions:
            begin = self._origin + start
            finish = begin + duration
            if finish <= wave_origin:
                continue
            begin = max(begin, wave_origin)
            partitions.append((name, begin - wave_origin, finish - begin))
        if not crashes and not partitions:
            return None
        return FaultPlan(
            node_crashes=crashes,
            partitions=tuple(partitions),
            seed=self.plan.seed,
            policy=self.plan.policy,
        )

    def _apply_due_crashes(self, now: float) -> None:
        """Fail the HDFS view of every node whose crash time has passed."""
        if self.plan is None:
            return
        for name, at in sorted(self.plan.node_crashes, key=lambda c: (c[1], c[0])):
            when = self._origin + at
            if when <= now and name not in self._crashed:
                self._crashed.add(name)
                self.cluster.hdfs.fail_node(name)

    def _commit_output(self, stage: Stage) -> None:
        """Create the stage's output file in HDFS (namespace bookkeeping)."""
        hdfs = self.cluster.hdfs
        if hdfs.file_exists(stage.output):
            hdfs.delete_file(stage.output)
        hdfs.create_file(stage.output, stage.output_bytes)

    # -- lineage ---------------------------------------------------------------

    def _lost_upstream(self, workflow: Workflow, stage: Stage) -> list[str]:
        """The minimal upstream subgraph to re-execute for *stage*.

        A dependency whose output lost every replica must re-run; its
        own inputs are checked recursively, so only stages whose data is
        actually gone are re-executed — upstream stages with intact
        outputs are reused as-is.
        """
        hdfs = self.cluster.hdfs
        doomed: list[str] = []
        seen: set[str] = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            producer = workflow.stage(name)
            if name in self._completed and hdfs.lost_blocks(producer.output):
                doomed.append(name)
                for dep in producer.deps:
                    visit(dep)

        for dep in stage.deps:
            visit(dep)
        return [n for n in workflow.order if n in doomed]

    def _heal(self, workflow: Workflow, doomed: list[str], now: float) -> None:
        for name in doomed:
            producer = workflow.stage(name)
            self._completed.pop(name, None)
            self._statuses.pop(name, None)
            self.journal.forget_stage(name)
            self.accounting.lineage_recomputes += 1
            self._record("lineage_recompute")
            self.bus.publish(
                EVENT_HEAL,
                time_s=now,
                stage=name,
                output=producer.output,
            )

    # -- the run loop ----------------------------------------------------------

    def run(
        self,
        workflow: Workflow,
        resume_from: WorkflowCheckpoint | None = None,
    ) -> WorkflowResult:
        """Run *workflow* to quiescence and return its result.

        *resume_from* pre-seeds completed stages from a checkpoint (a
        restarted JobTracker handing the runner its recovered journal);
        those stages are never re-executed, which the accounting's
        ``stages_recovered`` records.
        """
        if self._ran:
            raise RuntimeError("runner already ran; build a new WorkflowRunner")
        self._ran = True
        plan = self.plan
        if plan is not None:
            known = {node.name for node in self.cluster.slaves}
            for name, _at in plan.node_crashes:
                if name not in known:
                    raise ValueError(f"unknown crash node {name!r}")
            for name, _s, _d in plan.partitions:
                if name not in known:
                    raise ValueError(f"unknown partition node {name!r}")
            for stage in plan.destroy_outputs:
                workflow.stage(stage)
            for stage, _n in plan.fail_stages:
                workflow.stage(stage)
            if plan.master_crash_after is not None:
                workflow.stage(plan.master_crash_after)
        self._origin = self.cluster.clock
        self._crashed: set[str] = set()
        self._outputs_destroyed: set[str] = set()
        self._completed: dict[str, float] = {}
        self.journal.workflow = workflow.name

        acct = self.accounting
        bus = self.bus
        statuses = self._statuses = {}
        cancelled_by: dict[str, str] = {}
        executions: dict[str, int] = {name: 0 for name in workflow.order}
        retries: dict[str, int] = {name: 0 for name in workflow.order}
        recomputes: dict[str, int] = {name: 0 for name in workflow.order}
        first_launch: dict[str, float] = {}
        failures: dict[str, int] = {name: 0 for name in workflow.order}
        injected_left = dict(plan.fail_stages) if plan else {}
        retry_floor: dict[str, float] = {}
        announced: set[str] = set()

        if resume_from is not None:
            if resume_from.workflow != workflow.name:
                raise ValueError(
                    f"checkpoint is for workflow {resume_from.workflow!r}"
                )
            for record in resume_from.records:
                workflow.stage(record.stage)
                self._completed[record.stage] = record.finished_s
                self.journal.record_stage(
                    record.stage, record.finished_s, record.attempts, record.output
                )
                statuses[record.stage] = "completed"
                acct.stages_recovered += 1

        acct_crash_pending = (
            plan.master_crash_after if plan is not None else None
        )
        self._record("workflow_submitted")
        bus.publish(
            EVENT_SUBMIT,
            time_s=self._origin,
            workflow=workflow.name,
            stages=len(workflow),
        )

        while True:
            # Deliver everything published so far (the runner reacts to
            # outcomes inline; delivery appends to the replayable log).
            bus.pump()
            now = self.cluster.clock
            self._apply_due_crashes(now)
            open_stages = [
                name
                for name in workflow.order
                if name not in self._completed and statuses.get(name) is None
            ]
            if not open_stages:
                break
            # Lineage check at the consumption edge: a ready stage whose
            # input data is gone triggers minimal-subgraph healing.
            healed = False
            for name in open_stages:
                stage = workflow.stage(name)
                if all(dep in self._completed for dep in stage.deps):
                    doomed = self._lost_upstream(workflow, stage)
                    if doomed:
                        self._heal(workflow, doomed, now)
                        for lost in doomed:
                            recomputes[lost] += 1
                        healed = True
            if healed:
                continue
            ready = [
                name
                for name in open_stages
                if all(dep in self._completed for dep in workflow.stage(name).deps)
            ]
            if not ready:
                # Only possible when every remaining stage waits on a
                # failed/cancelled upstream — propagation marked those,
                # so an empty ready set here is a real orchestrator bug.
                stuck = ", ".join(open_stages)
                raise RuntimeError(f"workflow deadlocked on stages: {stuck}")

            acct.waves += 1
            wave_origin = self.cluster.clock
            multi = MultiJobCluster(
                self.cluster,
                self._scheduler(),
                plan=self._wave_fault_plan(wave_origin),
            )
            submitted: dict[str, object] = {}
            for name in ready:
                stage = workflow.stage(name)
                arrival = max(retry_floor.get(name, wave_origin), wave_origin)
                submitted[name] = multi.submit(
                    stage.work,
                    arrival_s=arrival,
                    user=stage.user,
                    pool=stage.pool,
                    job_id=f"{workflow.name}/{name}/x{executions[name]}",
                )
                executions[name] += 1
                acct.stages_run += 1
                if name not in announced:
                    announced.add(name)
                    bus.publish(
                        EVENT_STAGE_READY, time_s=arrival, stage=name
                    )
            outcome = multi.run(raise_on_failure=False)
            if outcome.fault_accounting is not None:
                mix_acct = outcome.fault_accounting
                acct.killed_attempts += mix_acct.killed_attempts
                acct.zombies_fenced += mix_acct.zombies_fenced
                acct.maps_reexecuted += mix_acct.maps_reexecuted
                acct.reduces_reexecuted += mix_acct.reduces_reexecuted
                acct.wasted_task_seconds += mix_acct.wasted_task_seconds

            wave_end = self.cluster.clock
            for name in ready:
                report = outcome.report(submitted[name].job_id)
                if report.first_launch_s is not None and name not in first_launch:
                    first_launch[name] = report.first_launch_s
                failed = report.status != "completed"
                if not failed and injected_left.get(name, 0) > 0:
                    # Deterministic commit-failure injection: the work
                    # ran, the commit is refused.
                    injected_left[name] -= 1
                    acct.injected_stage_failures += 1
                    failed = True
                if not failed:
                    stage = workflow.stage(name)
                    self._commit_output(stage)
                    self._completed[name] = report.finished_s
                    self.journal.record_stage(
                        name,
                        report.finished_s,
                        executions[name],
                        stage.output,
                    )
                    bus.publish(
                        EVENT_JOB_FINISHED,
                        time_s=report.finished_s,
                        stage=name,
                        finished_s=report.finished_s,
                    )
                    if (
                        plan is not None
                        and name in plan.destroy_outputs
                        and name not in self._outputs_destroyed
                    ):
                        # One loss window per stage: after healing, the
                        # recomputed output is not destroyed again.
                        self._outputs_destroyed.add(name)
                        destroyed = self.cluster.hdfs.destroy_replicas(
                            stage.output
                        )
                        if destroyed:
                            acct.destroyed_outputs += 1
                    continue
                # Stage failed: bounded retry, then permanent failure
                # cancelling exactly the downstream cone.
                failures[name] += 1
                stage = workflow.stage(name)
                if failures[name] <= stage.policy.max_retries:
                    retries[name] += 1
                    acct.stage_retries += 1
                    self._record("stage_retry")
                    retry_floor[name] = wave_end + stage.policy.retry_delay_s(
                        failures[name]
                    )
                    bus.publish(
                        EVENT_STAGE_RETRY,
                        time_s=wave_end,
                        stage=name,
                        failures=failures[name],
                        not_before_s=retry_floor[name],
                    )
                    continue
                statuses[name] = "failed"
                acct.stages_failed += 1
                bus.publish(
                    EVENT_STAGE_FAILED,
                    time_s=wave_end,
                    stage=name,
                    failures=failures[name],
                )
                for downstream in workflow.downstream_cone(name):
                    if (
                        downstream in self._completed
                        or statuses.get(downstream) is not None
                    ):
                        continue
                    statuses[downstream] = "cancelled"
                    cancelled_by[downstream] = name
                    acct.stages_cancelled += 1
                    self._record("stage_cancelled")
                    bus.publish(
                        EVENT_JOB_CANCELLED,
                        time_s=wave_end,
                        stage=downstream,
                        upstream=name,
                    )

            # Checkpoint the committed frontier (control-plane only).
            self.last_checkpoint = WorkflowCheckpoint(
                workflow=workflow.name,
                records=tuple(self.journal.records),
            )
            acct.checkpoints += 1
            bus.publish(
                EVENT_CHECKPOINT,
                time_s=self.cluster.clock,
                stages=len(self._completed),
            )
            if (
                acct_crash_pending is not None
                and acct_crash_pending in self._completed
            ):
                # JobTracker crash: in-memory DAG state is lost; the
                # journal is durable, so recovery rebuilds the committed
                # set without re-running any committed stage.
                acct_crash_pending = None
                acct.master_crashes += 1
                if self.observe:
                    self.cluster.master.procfs.record_master_restart()
                recovered = {
                    r.stage: r.finished_s for r in self.journal.records
                }
                assert recovered == self._completed
                self._completed = recovered
                acct.stages_recovered += len(recovered)

        bus.pump()
        reports = []
        for name in workflow.order:
            status = statuses.get(name) or (
                "completed" if name in self._completed else "failed"
            )
            record = self.journal.record_for(name)
            reports.append(
                StageReport(
                    stage=name,
                    status=status,
                    executions=executions[name],
                    retries=retries[name],
                    recomputes=recomputes[name],
                    first_launch_s=first_launch.get(name),
                    finished_s=(
                        record.finished_s if record is not None else None
                    ),
                    output=workflow.stage(name).output,
                    cancelled_by=cancelled_by.get(name),
                )
            )
        complete = all(r.status == "completed" for r in reports)
        if complete:
            self._record("workflow_completed")
        outputs = {
            name: workflow.stage(name).payload
            for name in workflow.sinks()
            if name in self._completed
        }
        return WorkflowResult(
            workflow=workflow.name,
            scheduler=self._scheduler().name,
            status="completed" if complete else "partial",
            reports=reports,
            outputs=outputs,
            end_s=max(self._completed.values(), default=self._origin),
            accounting=acct,
            events=tuple(bus.log),
        )


# -- DAG builders --------------------------------------------------------------


def workflow_from_chain(
    name: str,
    works: list[JobWork],
    payload: object = None,
    policy: StagePolicy = StagePolicy(),
) -> Workflow:
    """A linear DAG from an ordered list of jobs (the ``submit_chain``
    shape); *payload* rides on the final stage."""
    if not works:
        raise ValueError("a chain needs at least one job")
    stages = []
    previous: str | None = None
    for index, work in enumerate(works):
        stage_name = f"s{index:02d}"
        stages.append(
            Stage(
                name=stage_name,
                work=work,
                deps=(previous,) if previous else (),
                payload=payload if index == len(works) - 1 else None,
                policy=policy,
            )
        )
        previous = stage_name
    return Workflow(name, stages)


def _shadow_works(workload_name: str, scale: float, num_slaves: int):
    """Solo shadow run: per-stage works + the functional output."""
    from repro.cluster.cluster import make_cluster
    from repro.workloads import workload as load_workload

    shadow = make_cluster(num_slaves=num_slaves, block_size=256 * 1024)
    run = load_workload(workload_name).run(scale=scale, cluster=shadow)
    return [result.work for result in run.job_results], run.output


def hive_chain_workflow(scale: float = 0.05, num_slaves: int = 4) -> Workflow:
    """Hive-bench: a query compiled to chained MapReduce stages."""
    works, output = _shadow_works("Hive-bench", scale, num_slaves)
    return workflow_from_chain("hive-chain", works, payload=output)


def kmeans_workflow(scale: float = 0.05, num_slaves: int = 4) -> Workflow:
    """K-means: an iterative convergence loop over intermediate state."""
    works, output = _shadow_works("K-means", scale, num_slaves)
    return workflow_from_chain("kmeans", works, payload=output)


def pagerank_workflow(scale: float = 0.05, num_slaves: int = 4) -> Workflow:
    """PageRank: power iterations chained through HDFS."""
    works, output = _shadow_works("PageRank", scale, num_slaves)
    return workflow_from_chain("pagerank", works, payload=output)


def diamond_workflow(scale: float = 0.05, num_slaves: int = 4) -> Workflow:
    """A fan-out/fan-in diamond plus an independent branch.

    ``ingest`` feeds two parallel analyses joined by ``join``; ``side``
    is an independent single-stage branch.  The shape the
    failure-propagation tests need: failing one branch must cancel only
    ``join``, while ``side`` (and the surviving branch) complete.
    """
    works, output = _shadow_works("Grep", scale, num_slaves)
    base = works[0]
    stages = [
        Stage(name="ingest", work=replace(base, name="ingest")),
        Stage(name="left", work=replace(base, name="left"), deps=("ingest",)),
        Stage(name="right", work=replace(base, name="right"), deps=("ingest",)),
        Stage(
            name="join",
            work=replace(base, name="join"),
            deps=("left", "right"),
            payload=output,
        ),
        Stage(name="side", work=replace(base, name="side"), payload=output),
    ]
    return Workflow("diamond", stages)


#: CLI/chaos registry: DAG name → builder(scale, num_slaves) → Workflow.
WORKFLOW_DAGS = {
    "hive-chain": hive_chain_workflow,
    "kmeans": kmeans_workflow,
    "pagerank": pagerank_workflow,
    "diamond": diamond_workflow,
}


def build_workflow(dag: str, scale: float = 0.05, num_slaves: int = 4) -> Workflow:
    """Build a registry DAG by name (``hive-chain``, ``kmeans``, ...)."""
    try:
        builder = WORKFLOW_DAGS[dag]
    except KeyError:
        known = ", ".join(sorted(WORKFLOW_DAGS))
        raise ValueError(f"unknown DAG {dag!r} (want one of: {known})") from None
    return builder(scale=scale, num_slaves=num_slaves)
