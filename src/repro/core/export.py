"""Machine-readable exports of the figure data (CSV / JSON).

The paper's plots are bar charts per workload; downstream users want the
series as data.  These helpers serialise a suite characterization into
one flat table, one row per workload, with every Figure 3–12 metric —
suitable for spreadsheets, pandas, or re-plotting.
"""

from __future__ import annotations

import csv
import io
import json

from repro.core.characterize import Characterization
from repro.core.metrics import STALL_CATEGORIES

#: column order of the export
COLUMNS = [
    "workload",
    "group",
    "ipc",
    "kernel_instruction_fraction",
    "l1i_mpki",
    "itlb_walks_pki",
    "l2_mpki",
    "l3_hit_ratio_of_l2_misses",
    "dtlb_walks_pki",
    "branch_misprediction_ratio",
    *[f"stall_{category}" for category in STALL_CATEGORIES],
]


def characterizations_to_rows(chars: list[Characterization]) -> list[dict]:
    """One dict per workload with every figure metric."""
    rows = []
    for c in chars:
        m = c.metrics
        row = {
            "workload": c.name,
            "group": c.group,
            "ipc": m.ipc,
            "kernel_instruction_fraction": m.kernel_instruction_fraction,
            "l1i_mpki": m.l1i_mpki,
            "itlb_walks_pki": m.itlb_walks_pki,
            "l2_mpki": m.l2_mpki,
            "l3_hit_ratio_of_l2_misses": m.l3_hit_ratio_of_l2_misses,
            "dtlb_walks_pki": m.dtlb_walks_pki,
            "branch_misprediction_ratio": m.branch_misprediction_ratio,
        }
        for category in STALL_CATEGORIES:
            row[f"stall_{category}"] = m.stall_breakdown.get(category, 0.0)
        rows.append(row)
    return rows


def to_csv(chars: list[Characterization]) -> str:
    """The full metric table as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=COLUMNS, lineterminator="\n")
    writer.writeheader()
    for row in characterizations_to_rows(chars):
        writer.writerow(row)
    return buffer.getvalue()


def to_json(chars: list[Characterization], indent: int | None = 2) -> str:
    """The full metric table as a JSON array."""
    return json.dumps(characterizations_to_rows(chars), indent=indent)
