"""Text renderings of the paper's tables and figure series.

The benchmark harness prints these: one row/bar per workload in the
paper's order, with the data-analysis "avg" bar where the paper has one.
"""

from __future__ import annotations

from repro.core.characterize import Characterization
from repro.core.metrics import Metrics, STALL_CATEGORIES, average_metrics
from repro.core.suite import DATA_ANALYSIS_NAMES
from repro.uarch.config import MachineConfig, XEON_E5645
from repro.workloads.base import all_workloads

#: figure-number → (metric attribute, y-axis label, value format)
FIGURE_METRICS = {
    3: ("ipc", "Instructions per cycle (IPC)", "{:.2f}"),
    4: ("kernel_instruction_fraction", "kernel instruction fraction", "{:.1%}"),
    7: ("l1i_mpki", "L1I misses per K-instruction", "{:.1f}"),
    8: ("itlb_walks_pki", "ITLB-miss page walks per K-instruction", "{:.3f}"),
    9: ("l2_mpki", "L2 misses per K-instruction", "{:.1f}"),
    10: ("l3_hit_ratio_of_l2_misses", "L3-hit ratio of L2 misses", "{:.1%}"),
    11: ("dtlb_walks_pki", "DTLB-miss page walks per K-instruction", "{:.3f}"),
    12: ("branch_misprediction_ratio", "Branch misprediction ratio", "{:.2%}"),
}


def _with_average(chars: list[Characterization]) -> list[tuple[str, Metrics]]:
    """Insert the data-analysis "avg" row after the DA block, as in the
    figures."""
    rows: list[tuple[str, Metrics]] = []
    da_metrics = [c.metrics for c in chars if c.name in DATA_ANALYSIS_NAMES]
    da_seen = 0
    for c in chars:
        rows.append((c.name, c.metrics))
        if c.name in DATA_ANALYSIS_NAMES:
            da_seen += 1
            if da_seen == len(da_metrics) and len(da_metrics) > 1:
                rows.append(("avg", average_metrics(da_metrics)))
    return rows


def render_figure_series(figure: int, chars: list[Characterization]) -> dict[str, float]:
    """The (workload → value) series behind one scalar figure."""
    if figure not in FIGURE_METRICS:
        raise ValueError(f"figure {figure} has no scalar metric (use the stall table for 6)")
    metric, _, _ = FIGURE_METRICS[figure]
    return {name: metrics.value(metric) for name, metrics in _with_average(chars)}


def render_metric_table(figure: int, chars: list[Characterization]) -> str:
    """Figure as a text table, one bar per row."""
    metric, label, fmt = FIGURE_METRICS[figure]
    lines = [f"Figure {figure}: {label}", "-" * 44]
    for name, metrics in _with_average(chars):
        lines.append(f"{name:<20s} {fmt.format(metrics.value(metric)):>10s}")
    return "\n".join(lines)


def render_stall_table(chars: list[Characterization]) -> str:
    """Figure 6: the six normalised stall categories per workload."""
    header = f"{'workload':<20s}" + "".join(f"{cat:>10s}" for cat in STALL_CATEGORIES)
    lines = ["Figure 6: Pipeline stall breakdown (normalised)", header, "-" * len(header)]
    for name, metrics in _with_average(chars):
        row = f"{name:<20s}" + "".join(
            f"{metrics.stall_breakdown.get(cat, 0.0):>10.1%}" for cat in STALL_CATEGORIES
        )
        lines.append(row)
    return "\n".join(lines)


def render_table1() -> str:
    """Table I: the eleven workloads with inputs and instruction counts."""
    lines = [
        "Table I: Representative data analysis workloads",
        f"{'No.':<4s}{'Workload':<16s}{'Input Data Size':<22s}"
        f"{'#Retired Instructions (1e9)':>28s}  {'Source'}",
    ]
    lines.append("-" * 90)
    for wl in all_workloads():
        info = wl.info
        lines.append(
            f"{info.table1_row:<4d}{info.name:<16s}{info.input_description:<22s}"
            f"{info.retired_instructions_1e9:>28d}  {info.source}"
        )
    return "\n".join(lines)


def render_table2() -> str:
    """Table II: application scenarios per workload and domain."""
    lines = ["Table II: Scenarios of data analysis", "-" * 70]
    for wl in all_workloads():
        for domain, scenario in wl.info.scenarios:
            lines.append(f"{wl.info.name:<16s}{domain:<24s}{scenario}")
    return "\n".join(lines)


def render_table3(machine: MachineConfig = XEON_E5645) -> str:
    """Table III: details of hardware configurations."""
    rows = machine.describe()
    width = max(len(k) for k in rows)
    lines = ["Table III: Details of hardware configurations", "-" * 60]
    for key, value in rows.items():
        lines.append(f"{key:<{width}s}  {value}")
    return "\n".join(lines)
