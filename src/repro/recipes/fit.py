"""Fit workload *recipes* from recorded instances.

A recipe is the statistical summary Redbench/WfCommons-style synthesis
needs: per user — job-template mix, job-size (scale) ranges, and the
*repetitiveness* split (how often the user resubmits an exact earlier
job vs the same template with different parameters); globally — the
Poisson arrival rate and each user's share of submissions.

Repeat classification follows Redbench's reading of the Snowset/Redset
production traces: walking one user's submissions in submit order,

* **exact repeat** — the (workload, scale) pair was submitted before by
  the same user (same template, same parameters);
* **varied repeat** — the workload template was submitted before by the
  same user, but never at this scale (parameter-varied recurrence);
* **fresh** — first time this user submits the template.

Users are then binned into repetitiveness *buckets* (deciles of
``repetition_rate``), mirroring how Redbench clusters Redset users by
their fraction of repeated queries.

Length-stability caveat: the *exact* repeat rate is the round-trip-
stable metric (``fit(generate(recipe))`` reproduces it within
statistical tolerance, because fresh scale draws essentially never
collide).  The *varied* rate is descriptive: over this repo's small
fixed workload vocabulary, "template seen before" saturates as a trace
grows, so varied rates of traces with very different lengths are not
comparable — real warehouses (Redset) sidestep this with far larger
query-template vocabularies.

Fitting is deterministic: same instance → identical recipe, and the
JSON form round-trips exactly (``Recipe.from_json(r.to_json()) == r``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.cluster.tenancy import WorkloadTrace
from repro.recipes.instances import Instance, InstanceJob, instance_from_trace

__all__ = [
    "ScaleStats",
    "TemplateStats",
    "UserRecipe",
    "Recipe",
    "fit_recipe",
    "repetition_bucket",
    "classify_repeats",
]


def repetition_bucket(rate: float) -> str:
    """Decile label for a repetition rate, e.g. ``"70-80%"``.

    ``rate == 1.0`` lands in the top bucket (``"90-100%"``), matching
    Redbench's ten user clusters ordered by query repetitiveness.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"repetition rate must be in [0, 1], got {rate}")
    decile = min(int(rate * 10), 9)
    return f"{decile * 10}-{decile * 10 + 10}%"


def classify_repeats(jobs: list[InstanceJob]) -> list[str]:
    """Label one user's submit-ordered jobs ``exact``/``varied``/``fresh``."""
    seen_exact: set[tuple[str, float]] = set()
    seen_templates: set[str] = set()
    labels = []
    for job in jobs:
        if job.exact_key in seen_exact:
            labels.append("exact")
        elif job.template_key in seen_templates:
            labels.append("varied")
        else:
            labels.append("fresh")
        seen_exact.add(job.exact_key)
        seen_templates.add(job.template_key)
    return labels


@dataclass(frozen=True)
class ScaleStats:
    """Observed job-size (scale) range for one user's template."""

    low: float
    high: float
    mean: float

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.mean <= self.high:
            raise ValueError(
                f"scale stats must satisfy 0 < low <= mean <= high, "
                f"got ({self.low}, {self.mean}, {self.high})"
            )

    def to_dict(self) -> dict:
        return {"low": self.low, "high": self.high, "mean": self.mean}

    @classmethod
    def from_dict(cls, data: dict) -> "ScaleStats":
        return cls(low=data["low"], high=data["high"], mean=data["mean"])


@dataclass(frozen=True)
class TemplateStats:
    """One job template (workload) in one user's mix."""

    workload: str
    weight: float
    pool: str
    size_class: str
    scales: ScaleStats
    plan_fingerprints: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not 0 < self.weight <= 1:
            raise ValueError(f"template weight must be in (0, 1], got {self.weight}")

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "weight": self.weight,
            "pool": self.pool,
            "size_class": self.size_class,
            "scales": self.scales.to_dict(),
            "plan_fingerprints": list(self.plan_fingerprints),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TemplateStats":
        return cls(
            workload=data["workload"],
            weight=data["weight"],
            pool=data["pool"],
            size_class=data["size_class"],
            scales=ScaleStats.from_dict(data["scales"]),
            plan_fingerprints=tuple(data.get("plan_fingerprints", ())),
        )


@dataclass(frozen=True)
class UserRecipe:
    """One user's fitted behaviour: mix, sizes, repetitiveness."""

    user: str
    weight: float
    num_jobs: int
    exact_repeat_rate: float
    varied_repeat_rate: float
    templates: tuple[TemplateStats, ...]

    def __post_init__(self) -> None:
        if not 0 < self.weight <= 1:
            raise ValueError(f"user weight must be in (0, 1], got {self.weight}")
        if self.exact_repeat_rate < 0 or self.varied_repeat_rate < 0:
            raise ValueError("repeat rates must be non-negative")
        if self.exact_repeat_rate + self.varied_repeat_rate > 1 + 1e-9:
            raise ValueError("repeat rates must sum to at most 1")
        if not self.templates:
            raise ValueError("a user recipe needs at least one template")

    @property
    def repetition_rate(self) -> float:
        return self.exact_repeat_rate + self.varied_repeat_rate

    @property
    def bucket(self) -> str:
        return repetition_bucket(min(self.repetition_rate, 1.0))

    def to_dict(self) -> dict:
        return {
            "user": self.user,
            "weight": self.weight,
            "num_jobs": self.num_jobs,
            "exact_repeat_rate": self.exact_repeat_rate,
            "varied_repeat_rate": self.varied_repeat_rate,
            "templates": [t.to_dict() for t in self.templates],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UserRecipe":
        return cls(
            user=data["user"],
            weight=data["weight"],
            num_jobs=data["num_jobs"],
            exact_repeat_rate=data["exact_repeat_rate"],
            varied_repeat_rate=data["varied_repeat_rate"],
            templates=tuple(
                TemplateStats.from_dict(t) for t in data["templates"]
            ),
        )


@dataclass(frozen=True)
class Recipe:
    """A fitted workload recipe: everything generation needs."""

    name: str
    source_seed: int
    source_jobs: int
    arrival_rate_per_s: float
    users: tuple[UserRecipe, ...]

    def __post_init__(self) -> None:
        if self.arrival_rate_per_s <= 0:
            raise ValueError("recipe arrival rate must be positive")
        if not self.users:
            raise ValueError("a recipe needs at least one user")

    @property
    def repetition_rate(self) -> float:
        """Submission-weighted overall repetition rate."""
        return sum(u.weight * u.repetition_rate for u in self.users)

    def user(self, name: str) -> UserRecipe:
        for u in self.users:
            if u.user == name:
                return u
        raise KeyError(name)

    def workload_mix(self) -> dict[str, float]:
        """Overall workload proportions implied by the fitted mix."""
        mix: dict[str, float] = {}
        for u in self.users:
            for t in u.templates:
                mix[t.workload] = mix.get(t.workload, 0.0) + u.weight * t.weight
        return dict(sorted(mix.items()))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "source_seed": self.source_seed,
            "source_jobs": self.source_jobs,
            "arrival_rate_per_s": self.arrival_rate_per_s,
            "users": [u.to_dict() for u in self.users],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "Recipe":
        return cls(
            name=data["name"],
            source_seed=data["source_seed"],
            source_jobs=data["source_jobs"],
            arrival_rate_per_s=data["arrival_rate_per_s"],
            users=tuple(UserRecipe.from_dict(u) for u in data["users"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "Recipe":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"recipe is not valid JSON: {error}") from None
        return cls.from_dict(data)


def _fit_scales(scales: list[float]) -> ScaleStats:
    """Scale range for one template from its sorted observations.

    A zero-width range (one observation, or every submission at the same
    scale) gets a ±10 % smoothing prior: a single sample carries no range
    evidence, and a degenerate range would force every regenerated
    "fresh" draw of the template onto the same scale — turning it into an
    exact repeat and breaking the repetition-rate round-trip.
    """
    low, high = scales[0], scales[-1]
    # clamp: float summation can push the mean a ulp outside [low, high]
    mean = min(max(sum(scales) / len(scales), low), high)
    if low == high:
        low, high = 0.9 * mean, 1.1 * mean
    return ScaleStats(low=low, high=high, mean=mean)


def _fit_user(user: str, jobs: list[InstanceJob], total_jobs: int) -> UserRecipe:
    labels = classify_repeats(jobs)
    n = len(jobs)
    by_workload: dict[str, list[InstanceJob]] = {}
    for job in jobs:
        by_workload.setdefault(job.workload, []).append(job)
    templates = []
    for workload in sorted(by_workload):
        group = by_workload[workload]
        scales = sorted(job.scale for job in group)
        # pool/size_class: majority vote, ties broken lexicographically
        # so fitting stays deterministic.
        pools: dict[str, int] = {}
        classes: dict[str, int] = {}
        for job in group:
            pools[job.pool] = pools.get(job.pool, 0) + 1
            classes[job.size_class] = classes.get(job.size_class, 0) + 1
        templates.append(
            TemplateStats(
                workload=workload,
                weight=len(group) / n,
                pool=min(pools, key=lambda p: (-pools[p], p)),
                size_class=min(classes, key=lambda c: (-classes[c], c)),
                scales=_fit_scales(scales),
                plan_fingerprints=group[0].plan_fingerprints,
            )
        )
    return UserRecipe(
        user=user,
        weight=n / total_jobs,
        num_jobs=n,
        exact_repeat_rate=labels.count("exact") / n,
        varied_repeat_rate=labels.count("varied") / n,
        templates=tuple(templates),
    )


def fit_recipe(source: Instance | WorkloadTrace, name: str | None = None) -> Recipe:
    """Fit a :class:`Recipe` from an instance (or directly from a trace,
    which is first lifted into a submit-only instance).

    Deterministic: no randomness anywhere; same source → equal recipe.
    """
    if isinstance(source, WorkloadTrace):
        source = instance_from_trace(source)
    by_user: dict[str, list[InstanceJob]] = {}
    for job in source.jobs:  # already submit-ordered (schema invariant)
        by_user.setdefault(job.user, []).append(job)
    total = len(source.jobs)
    users = tuple(
        _fit_user(user, by_user[user], total) for user in sorted(by_user)
    )
    # Poisson MLE over the observed window: the trace clock starts at 0,
    # so n arrivals by time span_s estimate rate = n / span_s.  A
    # single-job (or zero-span) instance has no interarrival evidence —
    # fall back to the recorded rate, or 1 job/s when that is 0 too
    # (hand-built traces record no nominal rate).
    span = source.span_s
    rate = total / span if span > 0 else source.arrival_rate_per_s
    if rate <= 0:
        rate = 1.0
    return Recipe(
        name=name or f"{source.name}-recipe",
        source_seed=source.seed,
        source_jobs=total,
        arrival_rate_per_s=rate,
        users=users,
    )
