"""Figure 7: L1 instruction-cache misses per thousand instructions.

Paper shape: data-analysis workloads average ~23 L1I MPKI — far above
SPEC CPU2006 and all HPCC programs, below most services; Media Streaming
is ~3× the DA average; Naive Bayes is the DA exception with the smallest
instruction footprint.
"""

from conftest import run_once

from repro.core.report import render_figure_series, render_metric_table


def test_fig07(benchmark, suite_chars, chars_by_name, da_chars, hpcc_chars):
    series = run_once(benchmark, lambda: render_figure_series(7, suite_chars))
    print()
    print(render_metric_table(7, suite_chars))

    da_avg = series["avg"]
    # Paper: ~23 L1I MPKI on average for the data-analysis workloads.
    assert 10 < da_avg < 40
    # HPCC instruction footprints are tiny.
    assert all(c.metrics.l1i_mpki < 2 for c in hpcc_chars)
    # SPEC CPU far below the data-analysis average.
    assert chars_by_name["SPECINT"].metrics.l1i_mpki < da_avg / 2
    assert chars_by_name["SPECFP"].metrics.l1i_mpki < da_avg / 2
    # Media Streaming ≈ 3× the DA average (paper: "about three times").
    streaming = chars_by_name["Media Streaming"].metrics.l1i_mpki
    assert streaming > 2 * da_avg
    # Naive Bayes: smallest L1I misses of the eleven (paper §IV-C).
    assert min(da_chars, key=lambda c: c.metrics.l1i_mpki).name == "Naive Bayes"
