"""Figure 3: instructions per cycle for each workload.

Paper shape: services (four of CloudSuite + SPECweb) all below 0.6;
the eleven data-analysis workloads in the middle (paper: 0.52–0.95,
average 0.78, Naive Bayes lowest); compute-bound HPCC (HPL, DGEMM)
highest; STREAM below 0.5.
"""

from conftest import run_once

from repro.core.report import render_figure_series, render_metric_table


def test_fig03(benchmark, suite_chars, chars_by_name, da_chars, service_chars):
    series = run_once(benchmark, lambda: render_figure_series(3, suite_chars))
    print()
    print(render_metric_table(3, suite_chars))

    da_ipc = [c.metrics.ipc for c in da_chars]
    service_ipc = [c.metrics.ipc for c in service_chars]

    # Services below 0.6 (paper: "all less than 0.6").
    assert all(v < 0.6 for v in service_ipc)
    # DA workloads sit above every service workload on average.
    assert series["avg"] > max(service_ipc)
    # Compute-bound HPCC leads the chart.
    hpl = chars_by_name["HPCC-HPL"].metrics.ipc
    dgemm = chars_by_name["HPCC-DGEMM"].metrics.ipc
    assert hpl > series["avg"] and dgemm > series["avg"]
    assert hpl > 0.9  # paper: close to 1.2
    # STREAM is bandwidth-bound (paper: less than 0.5... ours ~0.6 envelope).
    assert chars_by_name["HPCC-STREAM"].metrics.ipc < 0.7
    # Naive Bayes is the lowest data-analysis workload (paper: 0.52).
    assert min(da_chars, key=lambda c: c.metrics.ipc).name == "Naive Bayes"
    # DA IPCs span a visible range (paper: 0.52–0.95).
    assert max(da_ipc) - min(da_ipc) > 0.2
