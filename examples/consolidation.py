#!/usr/bin/env python3
"""Co-locate DCBench workloads on one socket (a CloudRank-style study).

The paper's §V positions DCBench next to CloudRank, whose goal is to
"model complex usage scenarios of cloud computing ... consolidat[ing]
different workloads on a datacenter".  This example uses the multi-core
model — per-workload cores sharing the LLC and DRAM bandwidth — to ask
the consolidation question directly: which data-analysis workloads can
share a socket with a service, and which get hurt?

Run:  python examples/consolidation.py
"""

from repro.core import DCBench
from repro.uarch import MultiCoreSystem
from repro.uarch.config import scaled_machine

SCALE = 8
VICTIMS = ["WordCount", "K-means", "Naive Bayes"]
NEIGHBOURS = ["Grep", "Data Serving", "HPCC-STREAM"]


def main() -> None:
    suite = DCBench.default()
    system = MultiCoreSystem(scaled_machine(SCALE))

    print(f"{'victim':<14s}{'neighbour':<16s}{'victim slowdown':>16s}"
          f"{'victim L3 ratio':>17s}")
    print("-" * 63)
    for victim_name in VICTIMS:
        victim = suite.entry(victim_name).trace_spec(80_000).scaled(SCALE)
        for neighbour_name in NEIGHBOURS:
            neighbour = (
                suite.entry(neighbour_name).trace_spec(80_000, seed=99).scaled(SCALE)
            )
            result = system.run_colocated([victim, neighbour])
            shared = result.shared[victim_name]
            print(f"{victim_name:<14s}{neighbour_name:<16s}"
                  f"{result.slowdown(victim_name):>15.2f}x"
                  f"{shared.l3_hit_ratio_of_l2_misses():>16.0%}")
    print("\nreading: >1.0x means the neighbour slows the victim down; the"
          "\nstreaming/service neighbours evict the victims' LLC share.")


if __name__ == "__main__":
    main()
