"""The resilience subsystem: faults, retries, crashes, and recovery.

Hadoop 1.x survives a whole taxonomy of everyday pathologies, and the
paper's runtimes (Figure 2 speedups, Figure 5 disk writes) are measured on
a scheduler that is permanently ready for them:

* **task failures** — an attempt dies (bad disk sector, JVM OOM); the
  jobtracker re-executes it with exponential backoff, preferring a node
  that has not yet failed this task, up to ``mapred.map.max.attempts`` /
  ``mapred.reduce.max.attempts`` failures before the job aborts;
* **stragglers** — a degraded node runs tasks far slower than its
  siblings; *speculative execution* launches backup attempts elsewhere
  (for maps and reduces) and takes whichever finishes first;
* **node loss** — a tasktracker stops heartbeating; after
  ``mapred.tasktracker.expiry.interval`` it is declared dead, its running
  attempts are killed and rescheduled, and its *completed map outputs*
  are re-executed (they lived on the dead node's local disks);
* **shuffle-fetch failures** — a reducer's copy of one map output fails;
  it retries with backoff, and after enough failures reports the output
  to the jobtracker, which re-runs the map;
* **repeatedly-failing nodes** are blacklisted for the job
  (``mapred.max.tracker.failures``);
* **HDFS replica loss** — splits on a dead datanode are re-read from
  surviving replicas while the namenode re-replicates in the background
  (or the job dies with :class:`~repro.cluster.attempts.DataLossError`
  when every replica is gone);
* **gray failures** — data that rots *silently*: at-rest bit flips and
  in-flight transfer corruption are caught by HDFS's end-to-end
  checksums (:class:`~repro.cluster.hdfs.ChecksumError`); the reader
  fails over to another replica and reports the bad block, the namenode
  drops the rotten copy (never the last one) and re-replicates from a
  good replica, and a background
  :class:`~repro.cluster.hdfs.DataBlockScanner` scrubs replicas nobody
  read.  Flaky links retransmit lost segments with TCP-like cost, and
  timed *network partitions* isolate a tasktracker without killing it:
  its tasks are rescheduled after the heartbeat timeout, and when the
  node rejoins, its zombie attempts are fenced at commit time
  (``canCommit`` — :class:`~repro.cluster.attempts.CommitFence`) and
  the flapping node is graylisted for a window instead of being
  blacklisted outright;
* **master loss** — the co-located JobTracker/NameNode crashes; after
  ``master_downtime_s`` of control-plane downtime the master restarts and
  either re-submits in-flight jobs from scratch (stock 1.x,
  ``mapred.jobtracker.restart.recover=false``) or *resumes* them from the
  persisted job-history journal (``recover=true``): completed map outputs
  on live tasktrackers are reused and only in-flight attempts are
  rescheduled.  The namespace itself is reconstructable from the
  NameNode's edit log (:mod:`repro.cluster.journal`).

:class:`FaultPlan` describes a deterministic (seeded) fault schedule for
one job; :class:`FaultyCluster` wraps a
:class:`~repro.cluster.cluster.HadoopCluster` and schedules jobs through
the full attempt state machine in :mod:`repro.cluster.attempts`.  With an
empty plan the scheduler reproduces the stock cluster's timeline exactly,
so the paper's fault-free figures are untouched.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field, replace

from repro.cluster.journal import JobHistoryJournal
from repro.cluster.attempts import (
    AttemptState,
    CommitFence,
    DataLossError,
    JobFailedError,
    NodeBlacklist,
    NodeGraylist,
    RetryPolicy,
    TaskAttempt,
    TaskAttempts,
)
from repro.cluster.hdfs import DataBlockScanner
from repro.cluster.cluster import (
    HadoopCluster,
    JobTimeline,
    JobWork,
    MapWork,
    TASK_LOG_BYTES,
)
from repro.cluster.node import Node


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection for one job execution.

    Attributes:
        map_failures: indices of map tasks whose first attempt fails at
            ``failure_point`` of their runtime.
        reduce_failures: like ``map_failures`` for reduce tasks.
        map_failure_counts: ``(map_index, n)`` pairs — the task's first
            *n* attempts all fail (set ``n >= max_attempts`` to exhaust
            the task and abort the job).
        reduce_failure_counts: like ``map_failure_counts`` for reduces.
        map_failure_rate: probability (seeded by ``seed``) that any given
            map attempt fails — Chen et al.'s "permanently degraded"
            production regime.
        reduce_failure_rate: like ``map_failure_rate`` for reduce attempts.
        straggler_nodes: node names running at ``straggler_factor`` speed.
        failure_point: fraction of an attempt's runtime spent before its
            failure is detected.
        straggler_factor: slowdown multiplier for straggler nodes.
        speculative_execution: launch backup attempts for straggler tasks
            (``mapred.map.tasks.speculative.execution`` and its reduce
            twin).
        node_crashes: ``(node_name, crash_time_s)`` pairs — the node stops
            heartbeating at ``crash_time_s`` after the first job's start
            and stays dead for the cluster's lifetime.
        master_crash_time: simulated time (relative to the first job's
            start, like ``node_crashes``) at which the co-located
            JobTracker/NameNode crashes; ``None`` disables master loss.
        master_recovery: what the restarted JobTracker does with the job
            that was in flight — ``"restart"`` re-submits it from scratch
            (stock 1.x) or ``"resume"`` recovers it from the job-history
            journal (``mapred.jobtracker.restart.recover=true``).
        master_downtime_s: control-plane downtime — no task is scheduled
            between the crash and the master's return.
        shuffle_failures: ``(reduce_index, map_index, times)`` triples —
            that reducer's fetch of that map output fails ``times``
            consecutive times before succeeding (or escalating to a map
            re-run once ``max_fetch_retries`` is reached).
        lost_replicas: ``(map_index, node_name)`` pairs — that input
            split's replica on that node is gone (latent disk corruption).
        corruption_rate: probability that any given HDFS block replica
            has silently rotted at rest before the job reads it (sampled
            once per replica from a stream independent of the
            task-failure rng, so adding corruption never perturbs the
            other fault draws).  Injection is bounded: a block's last
            good replica is never corrupted, so a checksum-verifying
            reader always completes.
        transfer_corruption_rate: probability that one network transfer
            of split data flips bits in flight; the receiver's checksum
            catches it and the transfer is re-requested.
        corrupt_replicas: explicit ``(map_index, node_name)`` pairs —
            that input split's replica on that node is rotten at rest.
        link_loss_rate: segment-drop probability applied to every
            network link (TCP-like retransmits charged to NICs/fabric).
        lossy_links: ``(src_node, dst_node, rate)`` per-link overrides.
        partitions: ``(node_name, start_s, duration_s)`` triples — the
            node is unreachable in that window (relative to the first
            job's start, like ``node_crashes``) but *keeps running*; it
            rejoins afterwards and sits out
            ``policy.graylist_window_s`` on the graylist.
        scrub: run a full DataBlockScanner sweep after each job, so
            at-rest corruption is caught even on replicas no task read.
        limping_nodes: ``(node_name, factor)`` pairs — fail-slow CPUs:
            the node's compute runs ``factor`` times slower (thermal
            throttling, a dying VRM).  Unlike ``straggler_nodes`` (an
            attempt-level stretch applied only by the single-job fault
            scheduler), limp factors live on the device models, so every
            charge — map, reduce, shuffle, replication — sees them, and
            the multi-job mix executor honours them too.
        limping_disks: ``(node_name, factor)`` pairs — that node's disk
            serves every request ``factor`` times slower (sector
            remapping, firmware retry storms).
        limping_nics: ``(node_name, factor)`` pairs — that node's NIC
            runs at ``1/factor`` of its negotiated bandwidth.
        fail_slow_rate: probability (from a dedicated seeded stream, so
            enabling it never perturbs the other fault draws) that any
            given node resource — CPU, disk or NIC, sampled
            independently — limps, with a factor drawn uniformly from
            ``fail_slow_factor_range``.
        fail_slow_factor_range: ``(lo, hi)`` bounds for rate-drawn limp
            factors, ``1 <= lo <= hi``.
        rack_outages: ``(rack_name, time_s)`` pairs — a rack power drop:
            every node in the rack crashes at once (correlated
            fail-stop).  Needs a multi-rack topology on the cluster.
        tor_failures: ``(rack_name, start_s, duration_s)`` triples — the
            rack's top-of-rack switch dies for the window: every member
            becomes a timed network partition (the nodes keep running
            behind the dark switch and rejoin when it is replaced).
        correlated_disk_failures: ``(rack_name, count)`` pairs — a bad
            batch of disks in one rack: ``count`` replicas on the rack's
            nodes rot at rest, chosen by a dedicated seeded stream
            (``rackdisk:<seed>``).  Injection is bounded like
            ``corruption_rate``: a block's last good replica is never
            corrupted.
        seed: seed for the rate-based injections.
        policy: the :class:`~repro.cluster.attempts.RetryPolicy` knobs.
    """

    map_failures: tuple[int, ...] = ()
    reduce_failures: tuple[int, ...] = ()
    map_failure_counts: tuple[tuple[int, int], ...] = ()
    reduce_failure_counts: tuple[tuple[int, int], ...] = ()
    map_failure_rate: float = 0.0
    reduce_failure_rate: float = 0.0
    straggler_nodes: tuple[str, ...] = ()
    failure_point: float = 0.5
    straggler_factor: float = 4.0
    speculative_execution: bool = True
    node_crashes: tuple[tuple[str, float], ...] = ()
    master_crash_time: float | None = None
    master_recovery: str = "resume"
    master_downtime_s: float = 0.75
    shuffle_failures: tuple[tuple[int, int, int], ...] = ()
    lost_replicas: tuple[tuple[int, str], ...] = ()
    corruption_rate: float = 0.0
    transfer_corruption_rate: float = 0.0
    corrupt_replicas: tuple[tuple[int, str], ...] = ()
    link_loss_rate: float = 0.0
    lossy_links: tuple[tuple[str, str, float], ...] = ()
    partitions: tuple[tuple[str, float, float], ...] = ()
    scrub: bool = False
    limping_nodes: tuple[tuple[str, float], ...] = ()
    limping_disks: tuple[tuple[str, float], ...] = ()
    limping_nics: tuple[tuple[str, float], ...] = ()
    fail_slow_rate: float = 0.0
    fail_slow_factor_range: tuple[float, float] = (2.0, 4.0)
    rack_outages: tuple[tuple[str, float], ...] = ()
    tor_failures: tuple[tuple[str, float, float], ...] = ()
    correlated_disk_failures: tuple[tuple[str, int], ...] = ()
    seed: int = 0
    policy: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_point <= 1.0:
            raise ValueError("failure_point must be in [0, 1]")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        for rate, label in (
            (self.map_failure_rate, "map_failure_rate"),
            (self.reduce_failure_rate, "reduce_failure_rate"),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")
        for index in self.map_failures + self.reduce_failures:
            if index < 0:
                raise ValueError("task indices must be non-negative")
        for index, count in self.map_failure_counts + self.reduce_failure_counts:
            if index < 0 or count < 1:
                raise ValueError("failure counts need index >= 0 and count >= 1")
        for _name, at in self.node_crashes:
            if at < 0:
                raise ValueError("crash times must be non-negative")
        if self.master_crash_time is not None and not (
            self.master_crash_time >= 0 and math.isfinite(self.master_crash_time)
        ):
            raise ValueError("master_crash_time must be finite and non-negative")
        if self.master_recovery not in ("restart", "resume"):
            raise ValueError("master_recovery must be 'restart' or 'resume'")
        if not (self.master_downtime_s >= 0 and math.isfinite(self.master_downtime_s)):
            raise ValueError("master_downtime_s must be finite and non-negative")
        for r_index, m_index, times in self.shuffle_failures:
            if r_index < 0 or m_index < 0 or times < 1:
                raise ValueError(
                    "shuffle failures need indices >= 0 and times >= 1"
                )
        for m_index, _node in self.lost_replicas:
            if m_index < 0:
                raise ValueError("lost replica map indices must be non-negative")
        for rate, label in (
            (self.corruption_rate, "corruption_rate"),
            (self.transfer_corruption_rate, "transfer_corruption_rate"),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")
        if not 0.0 <= self.link_loss_rate < 1.0:
            raise ValueError("link_loss_rate must be in [0, 1)")
        for _src, _dst, rate in self.lossy_links:
            if not 0.0 <= rate < 1.0:
                raise ValueError("per-link loss rates must be in [0, 1)")
        for m_index, _node in self.corrupt_replicas:
            if m_index < 0:
                raise ValueError(
                    "corrupt replica map indices must be non-negative"
                )
        for _node, p_start, duration in self.partitions:
            if not (p_start >= 0 and math.isfinite(p_start)):
                raise ValueError(
                    "partition starts must be finite and non-negative"
                )
            if not (duration > 0 and math.isfinite(duration)):
                raise ValueError(
                    "partition durations must be finite and positive"
                )
        for name, factor in (
            self.limping_nodes + self.limping_disks + self.limping_nics
        ):
            if not name:
                raise ValueError("limping resource node names must be non-empty")
            if not (factor >= 1.0 and math.isfinite(factor)):
                raise ValueError("limp factors must be finite and >= 1")
        if not 0.0 <= self.fail_slow_rate <= 1.0:
            raise ValueError("fail_slow_rate must be in [0, 1]")
        lo, hi = self.fail_slow_factor_range
        if not (1.0 <= lo <= hi and math.isfinite(hi)):
            raise ValueError(
                "fail_slow_factor_range needs 1 <= lo <= hi, both finite"
            )
        for rack, at in self.rack_outages:
            if not rack:
                raise ValueError("rack outage rack names must be non-empty")
            if not (at >= 0 and math.isfinite(at)):
                raise ValueError("rack outage times must be finite and non-negative")
        for rack, t_start, duration in self.tor_failures:
            if not rack:
                raise ValueError("ToR failure rack names must be non-empty")
            if not (t_start >= 0 and math.isfinite(t_start)):
                raise ValueError("ToR failure starts must be finite and non-negative")
            if not (duration > 0 and math.isfinite(duration)):
                raise ValueError("ToR failure durations must be finite and positive")
        for rack, count in self.correlated_disk_failures:
            if not rack:
                raise ValueError("correlated disk failure rack names must be non-empty")
            if count < 1:
                raise ValueError("correlated disk failure counts must be >= 1")

    @property
    def injects_fail_slow(self) -> bool:
        """True when any fail-slow (limping-hardware) class is configured."""
        return bool(
            self.limping_nodes
            or self.limping_disks
            or self.limping_nics
            or self.fail_slow_rate
        )

    def resolve_fail_slow(
        self, node_names: tuple[str, ...]
    ) -> dict[str, dict[str, float]]:
        """Effective per-node limp factors: ``{node: {cpu, disk, nic}}``.

        A ``limping_nodes`` entry limps the whole machine — CPU, disk
        and NIC together, the thermal-throttled / misconfigured-host
        presentation — while ``limping_disks`` / ``limping_nics`` limp
        one device.  Explicit entries apply first; ``fail_slow_rate``
        then samples each (node, resource) pair from its own seeded
        stream (``failslow:<seed>``), so turning it on never perturbs
        the task-failure or gray-failure draws.  Factors combine by
        ``max`` — the worse diagnosis wins.
        """
        factors = {
            name: {"cpu": 1.0, "disk": 1.0, "nic": 1.0} for name in node_names
        }
        for resources, pairs in (
            (("cpu", "disk", "nic"), self.limping_nodes),
            (("disk",), self.limping_disks),
            (("nic",), self.limping_nics),
        ):
            for name, factor in pairs:
                if name not in factors:
                    raise ValueError(f"unknown limping node {name!r}")
                for resource in resources:
                    factors[name][resource] = max(
                        factors[name][resource], factor
                    )
        if self.fail_slow_rate:
            rng = random.Random(f"failslow:{self.seed}")
            lo, hi = self.fail_slow_factor_range
            for name in node_names:
                for resource in ("cpu", "disk", "nic"):
                    if rng.random() < self.fail_slow_rate:
                        factors[name][resource] = max(
                            factors[name][resource], rng.uniform(lo, hi)
                        )
        return factors

    @property
    def injects_faults(self) -> bool:
        """True when any fault class is configured."""
        return bool(
            self.map_failures
            or self.reduce_failures
            or self.map_failure_counts
            or self.reduce_failure_counts
            or self.map_failure_rate
            or self.reduce_failure_rate
            or self.straggler_nodes
            or self.node_crashes
            or self.master_crash_time is not None
            or self.shuffle_failures
            or self.lost_replicas
            or self.corruption_rate
            or self.transfer_corruption_rate
            or self.corrupt_replicas
            or self.link_loss_rate
            or self.lossy_links
            or self.partitions
            or self.rack_outages
            or self.tor_failures
            or self.correlated_disk_failures
            or self.injects_fail_slow
        )

    @classmethod
    def random_plan(
        cls,
        num_maps: int,
        failure_rate: float = 0.05,
        seed: int = 0,
        **kwargs,
    ) -> "FaultPlan":
        """Sample a plan with roughly *failure_rate* of maps failing."""
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        rng = random.Random(seed)
        failures = tuple(
            i for i in range(num_maps) if rng.random() < failure_rate
        )
        kwargs.setdefault("seed", seed)
        return cls(map_failures=failures, **kwargs)


@dataclass
class FaultyTimeline:
    """A job timeline annotated with resilience accounting.

    Quacks like a :class:`~repro.cluster.cluster.JobTimeline` (duration,
    phase ends, disk rates), so workloads and analyses accept it wherever
    a plain timeline goes.
    """

    timeline: JobTimeline
    failed_attempts: int = 0
    failed_map_attempts: int = 0
    failed_reduce_attempts: int = 0
    killed_attempts: int = 0
    speculative_attempts: int = 0
    speculative_wins: int = 0
    wasted_seconds: float = 0.0
    shuffle_fetch_failures: int = 0
    fetch_escalations: int = 0
    maps_reexecuted: int = 0
    re_replicated_bytes: int = 0
    blocks_lost: int = 0
    master_crashes: int = 0
    recovery_mode: str = ""
    recovery_downtime_s: float = 0.0
    maps_recovered: int = 0
    jobs_restarted: int = 0
    jobs_resumed: int = 0
    nodes_crashed: tuple[str, ...] = ()
    blacklisted_nodes: tuple[str, ...] = ()
    corrupt_replicas_injected: int = 0
    checksum_failures: int = 0
    bad_blocks_reported: int = 0
    scrubbed_bytes: int = 0
    zombie_attempts_fenced: int = 0
    net_retransmits: int = 0
    net_retransmit_bytes: int = 0
    nodes_partitioned: tuple[str, ...] = ()
    graylisted_nodes: tuple[str, ...] = ()
    attempts: tuple[TaskAttempt, ...] = ()

    # -- JobTimeline protocol -------------------------------------------------

    @property
    def job_name(self) -> str:
        return self.timeline.job_name

    @property
    def start_s(self) -> float:
        return self.timeline.start_s

    @property
    def map_phase_end_s(self) -> float:
        return self.timeline.map_phase_end_s

    @property
    def end_s(self) -> float:
        return self.timeline.end_s

    @property
    def map_tasks(self) -> int:
        return self.timeline.map_tasks

    @property
    def reduce_tasks(self) -> int:
        return self.timeline.reduce_tasks

    @property
    def disk_writes_per_second(self) -> dict[str, float]:
        return self.timeline.disk_writes_per_second

    @property
    def network_bytes(self) -> int:
        return self.timeline.network_bytes

    @property
    def duration_s(self) -> float:
        return self.timeline.duration_s

    def accounting(self) -> dict[str, object]:
        """The resilience counters as a flat dict (CLI / report rendering)."""
        return {
            "failed_attempts": self.failed_attempts,
            "failed_map_attempts": self.failed_map_attempts,
            "failed_reduce_attempts": self.failed_reduce_attempts,
            "killed_attempts": self.killed_attempts,
            "speculative_attempts": self.speculative_attempts,
            "speculative_wins": self.speculative_wins,
            "wasted_seconds": round(self.wasted_seconds, 6),
            "shuffle_fetch_failures": self.shuffle_fetch_failures,
            "fetch_escalations": self.fetch_escalations,
            "maps_reexecuted": self.maps_reexecuted,
            "re_replicated_bytes": self.re_replicated_bytes,
            "blocks_lost": self.blocks_lost,
            "master_crashes": self.master_crashes,
            "recovery_downtime_s": round(self.recovery_downtime_s, 6),
            "maps_recovered": self.maps_recovered,
            "jobs_restarted": self.jobs_restarted,
            "jobs_resumed": self.jobs_resumed,
            "corrupt_replicas_injected": self.corrupt_replicas_injected,
            "checksum_failures": self.checksum_failures,
            "bad_blocks_reported": self.bad_blocks_reported,
            "scrubbed_bytes": self.scrubbed_bytes,
            "zombie_attempts_fenced": self.zombie_attempts_fenced,
            "net_retransmits": self.net_retransmits,
            "net_retransmit_bytes": self.net_retransmit_bytes,
            "nodes_crashed": self.nodes_crashed,
            "blacklisted_nodes": self.blacklisted_nodes,
            "nodes_partitioned": self.nodes_partitioned,
            "graylisted_nodes": self.graylisted_nodes,
        }

    def to_dict(self) -> dict:
        """JSON-serializable report: the timeline plus resilience counters."""
        report = self.timeline.to_dict()
        accounting = self.accounting()
        for key in ("nodes_crashed", "blacklisted_nodes", "nodes_partitioned",
                    "graylisted_nodes"):
            accounting[key] = list(accounting[key])
        report["resilience"] = accounting
        return report


class _RunStats:
    """Mutable accumulator for one run's resilience counters.

    The :class:`FaultyTimeline` is assembled from this *after* the
    :class:`JobTimeline` exists, so the timeline field is never a lie.
    """

    def __init__(self) -> None:
        self.failed_map_attempts = 0
        self.failed_reduce_attempts = 0
        self.killed_attempts = 0
        self.speculative_attempts = 0
        self.speculative_wins = 0
        self.wasted_seconds = 0.0
        self.shuffle_fetch_failures = 0
        self.fetch_escalations = 0
        self.maps_reexecuted = 0
        self.re_replicated_bytes = 0
        self.blocks_lost = 0
        self.master_crashes = 0
        self.recovery_downtime_s = 0.0
        self.maps_recovered = 0
        self.jobs_restarted = 0
        self.jobs_resumed = 0
        self.corrupt_replicas_injected = 0
        self.checksum_failures = 0
        self.bad_blocks_reported = 0
        self.scrubbed_bytes = 0
        self.zombie_attempts_fenced = 0
        self.net_retransmits = 0
        self.net_retransmit_bytes = 0
        self.nodes_crashed: list[str] = []
        self.nodes_partitioned: list[str] = []
        self.attempts: list[TaskAttempt] = []

    def merge_from(self, other: "_RunStats") -> None:
        """Fold another accumulator's counters into this one."""
        self.failed_map_attempts += other.failed_map_attempts
        self.failed_reduce_attempts += other.failed_reduce_attempts
        self.killed_attempts += other.killed_attempts
        self.speculative_attempts += other.speculative_attempts
        self.speculative_wins += other.speculative_wins
        self.wasted_seconds += other.wasted_seconds
        self.shuffle_fetch_failures += other.shuffle_fetch_failures
        self.fetch_escalations += other.fetch_escalations
        self.maps_reexecuted += other.maps_reexecuted
        self.re_replicated_bytes += other.re_replicated_bytes
        self.blocks_lost += other.blocks_lost
        self.master_crashes += other.master_crashes
        self.recovery_downtime_s += other.recovery_downtime_s
        self.maps_recovered += other.maps_recovered
        self.jobs_restarted += other.jobs_restarted
        self.jobs_resumed += other.jobs_resumed
        self.corrupt_replicas_injected += other.corrupt_replicas_injected
        self.checksum_failures += other.checksum_failures
        self.bad_blocks_reported += other.bad_blocks_reported
        self.scrubbed_bytes += other.scrubbed_bytes
        self.zombie_attempts_fenced += other.zombie_attempts_fenced
        self.net_retransmits += other.net_retransmits
        self.net_retransmit_bytes += other.net_retransmit_bytes
        self.nodes_crashed.extend(other.nodes_crashed)
        self.nodes_partitioned.extend(other.nodes_partitioned)
        self.attempts.extend(other.attempts)

    def finish(
        self,
        timeline: JobTimeline,
        blacklist: NodeBlacklist,
        recovery_mode: str = "",
        graylist: NodeGraylist | None = None,
    ) -> FaultyTimeline:
        return FaultyTimeline(
            timeline=timeline,
            failed_attempts=self.failed_map_attempts + self.failed_reduce_attempts,
            failed_map_attempts=self.failed_map_attempts,
            failed_reduce_attempts=self.failed_reduce_attempts,
            killed_attempts=self.killed_attempts,
            speculative_attempts=self.speculative_attempts,
            speculative_wins=self.speculative_wins,
            wasted_seconds=self.wasted_seconds,
            shuffle_fetch_failures=self.shuffle_fetch_failures,
            fetch_escalations=self.fetch_escalations,
            maps_reexecuted=self.maps_reexecuted,
            re_replicated_bytes=self.re_replicated_bytes,
            blocks_lost=self.blocks_lost,
            master_crashes=self.master_crashes,
            recovery_mode=recovery_mode if self.master_crashes else "",
            recovery_downtime_s=self.recovery_downtime_s,
            maps_recovered=self.maps_recovered,
            jobs_restarted=self.jobs_restarted,
            jobs_resumed=self.jobs_resumed,
            corrupt_replicas_injected=self.corrupt_replicas_injected,
            checksum_failures=self.checksum_failures,
            bad_blocks_reported=self.bad_blocks_reported,
            scrubbed_bytes=self.scrubbed_bytes,
            zombie_attempts_fenced=self.zombie_attempts_fenced,
            net_retransmits=self.net_retransmits,
            net_retransmit_bytes=self.net_retransmit_bytes,
            nodes_crashed=tuple(self.nodes_crashed),
            blacklisted_nodes=blacklist.nodes,
            nodes_partitioned=tuple(self.nodes_partitioned),
            graylisted_nodes=graylist.nodes if graylist is not None else (),
            attempts=tuple(self.attempts),
        )


class FaultyCluster:
    """A cluster that schedules jobs through the resilience subsystem.

    Wraps a :class:`HadoopCluster`; with an empty :class:`FaultPlan` the
    produced timeline is identical to the stock scheduler's.  The wrapper
    exposes the cluster surface the MapReduce engine needs (``hdfs``,
    ``run_job``, ``reset``), so it can be passed anywhere a plain cluster
    goes — including ``workload(...).run(cluster=...)``.

    Crash times in the plan are relative to the *first* job's start; a
    crashed node stays dead for every subsequent job until :meth:`reset`.
    The blacklist is per-job, like Hadoop 1.x's ``mapred.max.tracker.failures``:
    a tracker with too many failures stops getting *that job's* tasks but
    rejoins the pool for the next job.
    """

    def __init__(self, cluster: HadoopCluster, plan: FaultPlan):
        self.cluster = cluster
        self.plan = plan
        self.policy = plan.policy
        if plan.rack_outages or plan.tor_failures or plan.correlated_disk_failures:
            topology = cluster.topology
            if topology is None or topology.is_flat:
                raise ValueError(
                    "rack_outages/tor_failures/correlated_disk_failures "
                    "need a multi-rack topology on the cluster"
                )
            known_racks = set(topology.racks)
            for rack, *_rest in (
                plan.rack_outages
                + plan.tor_failures
                + plan.correlated_disk_failures
            ):
                if rack not in known_racks:
                    raise ValueError(f"unknown rack {rack!r} in the fault plan")
        self.blacklist = NodeBlacklist(plan.policy.node_failure_threshold)
        #: the jobtracker's persisted job-history log for the running job
        #: (what `resume` recovery replays after a master restart).
        self.job_history = JobHistoryJournal()
        #: commit fence (canCommit) — replaced per jobtracker incarnation.
        self.fence = CommitFence()
        #: time-bounded exclusion of nodes that partitioned and rejoined.
        self.graylist = NodeGraylist(plan.policy.graylist_window_s)
        self._origin: float | None = None
        self._jobs_run = 0
        self._crash_at: dict[str, float] = {}
        self._crashes_processed: set[str] = set()
        self._master_crash_processed = False
        # Gray-failure state.  Corruption and transfer-flip draws come
        # from streams independent of the per-job task-failure rng, so
        # plans pinned on `seed` keep their schedules when gray-failure
        # rates are added.
        self._corruption_rng = random.Random(f"corruption:{plan.seed}")
        self._gray_rng = random.Random(f"gray:{plan.seed}")
        self._corruption_sampled: set[tuple[str, int, str]] = set()
        self._rack_disks_injected = False
        self._partition_windows: dict[str, list[tuple[float, float]]] = {}
        self._partitions_processed: set[tuple[str, float]] = set()
        self._limping_names: frozenset[str] = frozenset()
        self._configure_gray_links()
        self._apply_fail_slow()

    def _apply_fail_slow(self) -> None:
        """Push the plan's limp factors onto the device models.

        A limping node behaves like a straggler to the jobtracker — its
        attempts are raced by speculative backups and it is skipped as a
        backup host — but unlike ``straggler_nodes`` the slowdown lives
        on the devices, so *everything* it serves (shuffle sources,
        replication targets) is slow, not just its own attempts.
        """
        plan = self.plan
        if not plan.injects_fail_slow:
            self._limping_names = frozenset()
            return
        factors = plan.resolve_fail_slow(
            tuple(node.name for node in self.cluster.slaves)
        )
        for node in self.cluster.slaves:
            per_resource = factors[node.name]
            node.slow_factor = per_resource["cpu"]
            node.disk.slow_factor = per_resource["disk"]
            node.nic.slow_factor = per_resource["nic"]
        self._limping_names = frozenset(
            name
            for name, per_resource in factors.items()
            if any(factor != 1.0 for factor in per_resource.values())
        )

    def _configure_gray_links(self) -> None:
        """Push the plan's link-loss model into the network fabric."""
        plan = self.plan
        if plan.link_loss_rate or plan.lossy_links:
            self.cluster.network.configure_loss(
                loss_rate=plan.link_loss_rate,
                link_loss={(s, d): r for s, d, r in plan.lossy_links},
                seed=plan.seed,
            )

    # -- cluster surface ------------------------------------------------------

    @property
    def hdfs(self):
        return self.cluster.hdfs

    @property
    def network(self):
        return self.cluster.network

    @property
    def slaves(self) -> list[Node]:
        return self.cluster.slaves

    @property
    def master(self) -> Node:
        return self.cluster.master

    @property
    def clock(self) -> float:
        return self.cluster.clock

    def reset(self) -> None:
        """Fresh experiment: clears cluster state and fault bookkeeping."""
        self.cluster.reset()
        self.blacklist = NodeBlacklist(self.plan.policy.node_failure_threshold)
        self.job_history = JobHistoryJournal()
        self.fence = CommitFence()
        self.graylist = NodeGraylist(self.plan.policy.graylist_window_s)
        self._origin = None
        self._jobs_run = 0
        self._crash_at = {}
        self._crashes_processed = set()
        self._master_crash_processed = False
        self._corruption_rng = random.Random(f"corruption:{self.plan.seed}")
        self._gray_rng = random.Random(f"gray:{self.plan.seed}")
        self._corruption_sampled = set()
        self._rack_disks_injected = False
        self._partition_windows = {}
        self._partitions_processed = set()
        self._apply_fail_slow()

    # -- job execution --------------------------------------------------------

    def run_job(self, work: JobWork) -> FaultyTimeline:
        cluster = self.cluster
        plan = self.plan
        policy = self.policy
        submitted = cluster.clock
        start = submitted
        if self._origin is None:
            self._origin = start
            self._crash_at = {
                name: self._origin + at for name, at in plan.node_crashes
            }
            # Correlated failure domains: a rack power outage fail-stops
            # every member at once; an earlier per-node crash time wins.
            for rack, at in plan.rack_outages:
                for member in cluster.topology.nodes_in(rack):
                    t = self._origin + at
                    if member not in self._crash_at or t < self._crash_at[member]:
                        self._crash_at[member] = t
            partitions = list(plan.partitions)
            # A dead ToR switch is a timed partition of the whole rack:
            # the nodes keep running behind the dark switch and rejoin
            # (via the graylist) when it is replaced.
            for rack, p_start, duration in plan.tor_failures:
                for member in cluster.topology.nodes_in(rack):
                    partitions.append((member, p_start, duration))
            for name, p_start, duration in partitions:
                window = (self._origin + p_start, self._origin + p_start + duration)
                self._partition_windows.setdefault(name, []).append(window)
                # The node will flap (vanish and rejoin): graylist it for
                # a window after each scheduled rejoin.
                self.graylist.record_flap(name, window[1])
            for windows in self._partition_windows.values():
                windows.sort()
        rng = random.Random(plan.seed + 1_000_003 * self._jobs_run)
        self._jobs_run += 1
        # Per-job blacklist (mapred.max.tracker.failures semantics) and
        # per-job job-history journal (jobtracker.info).
        self.blacklist = NodeBlacklist(policy.node_failure_threshold)
        self.job_history.clear()

        net_before = cluster.network.bytes_moved
        retrans_before = cluster.network.retransmits
        retrans_bytes_before = cluster.network.retransmit_bytes
        for node in cluster.slaves:
            node.procfs.sample(start)

        stats = _RunStats()
        self._inject_corruption(work, stats)
        crash = self._pending_master_crash()
        if crash is not None and crash <= start:
            # The master died between jobs: the next submission waits out
            # the control-plane restart.
            self._note_master_restart(stats)
            start = max(start, crash + plan.master_downtime_s)
            stats.recovery_downtime_s += start - submitted
            crash = None

        if crash is None:
            end, map_phase_end = self._execute_job(work, start, rng, stats)
        elif plan.master_recovery == "resume":
            end, map_phase_end = self._execute_job(
                work, start, rng, stats,
                master_crash=(crash, crash + plan.master_downtime_s),
            )
            if end > crash:
                # The crash actually hit this job: the restarted
                # jobtracker replayed the job history — every map output
                # journaled as complete on a still-live tasktracker was
                # reused rather than re-run.
                self._note_master_restart(stats)
                stats.jobs_resumed += 1
                stats.recovery_downtime_s += plan.master_downtime_s
                stats.maps_recovered += len({
                    event.task_id
                    for event in self.job_history.completed_maps_before(crash)
                    if not self._node_dead_at(event.node, crash)
                })
        else:
            end, map_phase_end = self._run_with_restart_recovery(
                work, start, crash, rng, stats
            )

        if plan.scrub:
            # Background DataBlockScanner sweep: its I/O lands on the
            # disks (pushing their busy timelines into the next job) but
            # does not extend the job's own timeline — scrubbing is a
            # daemon, not a task.
            self._scrub_pass(end, stats)
        stats.net_retransmits += cluster.network.retransmits - retrans_before
        stats.net_retransmit_bytes += (
            cluster.network.retransmit_bytes - retrans_bytes_before
        )
        for name in sorted(self._partition_windows):
            for w_start, _w_end in self._partition_windows[name]:
                if (name, w_start) in self._partitions_processed or w_start > end:
                    continue
                self._partitions_processed.add((name, w_start))
                stats.nodes_partitioned.append(name)

        cluster.clock = end
        rates: dict[str, float] = {}
        for node in cluster.slaves:
            node.procfs.sample(end)
            rates[node.name] = node.procfs.disk_writes_per_second()
        timeline = JobTimeline(
            job_name=work.name,
            start_s=submitted,
            map_phase_end_s=map_phase_end,
            end_s=end,
            map_tasks=len(work.maps),
            reduce_tasks=len(work.reduces),
            disk_writes_per_second=rates,
            network_bytes=cluster.network.bytes_moved - net_before,
        )
        return stats.finish(
            timeline,
            self.blacklist,
            recovery_mode=plan.master_recovery,
            graylist=self.graylist,
        )

    # -- master (jobtracker/namenode) loss ------------------------------------

    def _pending_master_crash(self) -> float | None:
        """Absolute time of the not-yet-processed master crash, if any."""
        if self._master_crash_processed or self.plan.master_crash_time is None:
            return None
        assert self._origin is not None
        return self._origin + self.plan.master_crash_time

    def _note_master_restart(self, stats: _RunStats) -> None:
        self._master_crash_processed = True
        stats.master_crashes += 1
        self.cluster.master.procfs.record_master_restart()

    @staticmethod
    def _clamp_downtime(t: float, master_crash: tuple[float, float] | None) -> float:
        """No task is scheduled while the control plane is down."""
        if master_crash is None:
            return t
        crash, recovery = master_crash
        return recovery if crash <= t < recovery else t

    def _run_with_restart_recovery(
        self,
        work: JobWork,
        start: float,
        crash: float,
        rng: random.Random,
        stats: _RunStats,
    ) -> tuple[float, float]:
        """Stock 1.x semantics (``mapred.jobtracker.restart.recover=false``).

        The restarted jobtracker has no memory of the in-flight job, so
        the job is re-submitted from scratch after the downtime — every
        task, completed or not, runs again.  Implemented on the cluster
        checkpoint API: a dry execution discovers what had happened by
        the crash instant, then the cluster is rolled back and the job is
        re-executed from the recovery time.  (The rollback also discards
        the pre-crash attempts' /proc traffic; their time is charged as
        wasted work below.)
        """
        cluster = self.cluster
        plan = self.plan
        cp = cluster.checkpoint()
        rng_state = rng.getstate()
        gray_state = self._gray_rng.getstate()
        crashes_before = set(self._crashes_processed)
        dry = _RunStats()
        end, map_phase_end = self._execute_job(work, start, rng, dry)
        if end <= crash:
            # The job beat the crash — the dry run is the real run, and
            # the crash lands between jobs (handled on the next submission).
            stats.merge_from(dry)
            return end, map_phase_end

        cluster.restore(cp)
        rng.setstate(rng_state)
        self._gray_rng.setstate(gray_state)
        self._crashes_processed = crashes_before
        self.job_history.clear()  # lost with the jobtracker
        self.blacklist = NodeBlacklist(self.policy.node_failure_threshold)
        self._note_master_restart(stats)
        stats.jobs_restarted += 1
        stats.recovery_downtime_s += plan.master_downtime_s
        # Everything the first incarnation did really happened and is all
        # wasted: completed attempts lose their outputs with the job, and
        # in-flight attempts are orphaned at the crash instant.
        for attempt in dry.attempts:
            if attempt.end_s <= crash:
                stats.attempts.append(attempt)
                stats.wasted_seconds += attempt.end_s - attempt.start_s
                if attempt.state is AttemptState.FAILED:
                    if attempt.task_id.startswith("m_"):
                        stats.failed_map_attempts += 1
                    else:
                        stats.failed_reduce_attempts += 1
                elif attempt.state is AttemptState.KILLED:
                    stats.killed_attempts += 1
            elif attempt.start_s < crash:
                stats.attempts.append(replace(
                    attempt,
                    end_s=crash,
                    state=AttemptState.KILLED,
                    reason="jobtracker lost",
                ))
                stats.killed_attempts += 1
                stats.wasted_seconds += crash - attempt.start_s
        return self._execute_job(
            work, crash + plan.master_downtime_s, rng, stats
        )

    # -- the scheduling core ---------------------------------------------------

    def _execute_job(
        self,
        work: JobWork,
        start: float,
        rng: random.Random,
        stats: _RunStats,
        master_crash: tuple[float, float] | None = None,
    ) -> tuple[float, float]:
        """Schedule *work* from *start* through the full attempt machinery.

        Returns ``(end, map_phase_end)``.  With ``master_crash=(T,
        recovery)`` the control plane is down in ``[T, recovery)``:
        attempts in flight at ``T`` are killed and rescheduled, and
        nothing new is scheduled before ``recovery`` (the `resume`
        recovery path — completed work is kept).
        """
        plan = self.plan
        policy = self.policy
        # Fresh commit fence per jobtracker incarnation: a restarted
        # master has no memory of grants it handed out before the crash.
        self.fence = CommitFence()
        stragglers = set(plan.straggler_nodes)
        lost_replicas = set(plan.lost_replicas)
        map_fail_budget = {i: 1 for i in plan.map_failures}
        map_fail_budget.update(dict(plan.map_failure_counts))
        reduce_fail_budget = {i: 1 for i in plan.reduce_failures}
        reduce_fail_budget.update(dict(plan.reduce_failure_counts))
        shuffle_faults = {
            (r, m): times for r, m, times in plan.shuffle_failures
        }

        # ---- map phase through the attempt state machine ----
        map_end_times: list[float] = []
        map_nodes: list[Node] = []
        map_outputs: list[int] = []
        map_attempts: list[TaskAttempts] = []
        for m_index, task in enumerate(work.maps):
            attempts = TaskAttempts(f"m_{m_index:06d}", policy)
            end, node = self._run_map_to_success(
                task, m_index, attempts, start, stragglers, lost_replicas,
                map_fail_budget, rng, stats, master_crash=master_crash,
            )
            map_attempts.append(attempts)
            map_end_times.append(end)
            map_nodes.append(node)
            map_outputs.append(task.output_bytes)

        map_phase_end = max(map_end_times) if map_end_times else start

        # ---- node-loss recovery: detection, HDFS repair, map re-execution ----
        # Crashes sharing an instant are one *event* (a rack losing
        # power): the namenode sees every member dead before any repair
        # starts, so re-replication never copies from a machine that
        # died in the same event.  Singleton groups follow exactly the
        # historical one-crash-at-a-time path.
        crashes = sorted(self._crash_at.items(), key=lambda kv: kv[1])
        for crash_time, group in itertools.groupby(crashes, key=lambda kv: kv[1]):
            members = [
                name for name, _ in group
                if name not in self._crashes_processed
            ]
            if not members or crash_time > map_phase_end:
                continue
            detection = crash_time + policy.heartbeat_timeout_s
            repairs: list[list] = []
            for name in members:
                self._crashes_processed.add(name)
                stats.nodes_crashed.append(name)
                under_replicated, lost = self.cluster.hdfs.fail_node(name)
                stats.blocks_lost += len(lost)
                repairs.append(under_replicated)
            for under_replicated in repairs:
                self._repair_blocks(under_replicated, detection, stats)
            if work.reduces:
                # Completed maps whose output lived on a dead node must
                # re-run: reducers fetch from tasktracker-local disks.
                for name in members:
                    for m_index, (end, node) in enumerate(
                        zip(map_end_times, map_nodes)
                    ):
                        if node.name != name or end > crash_time:
                            continue
                        stats.maps_reexecuted += 1
                        stats.wasted_seconds += end - max(
                            a.start_s
                            for a in map_attempts[m_index].attempts
                            if a.state is AttemptState.SUCCEEDED
                        )
                        new_end, new_node = self._run_map_to_success(
                            work.maps[m_index], m_index, map_attempts[m_index],
                            detection, stragglers, lost_replicas, {}, rng, stats,
                            reason="map output lost with node",
                            master_crash=master_crash,
                        )
                        map_end_times[m_index] = new_end
                        map_nodes[m_index] = new_node
            map_phase_end = max(map_end_times) if map_end_times else start

        # ---- shuffle (reducers pull as maps finish), with fetch faults ----
        end = map_phase_end
        total_map_output = sum(map_outputs)
        placements = [
            self._pick_reduce_slot(i, start, map_phase_end)
            for i in range(len(work.reduces))
        ]
        shuffle_done_times: list[float] = []
        for r_index, ((node, _slot, ready), task) in enumerate(
            zip(placements, work.reduces)
        ):
            shuffle_done = max(ready, start)
            if total_map_output and task.shuffle_bytes:
                for m_index in range(len(work.maps)):
                    m_out = map_outputs[m_index]
                    segment = int(task.shuffle_bytes * (m_out / total_map_output))
                    if segment <= 0:
                        continue
                    done = self._fetch_segment(
                        r_index, m_index, segment, node, work,
                        map_end_times, map_nodes, map_attempts,
                        shuffle_faults, stragglers, lost_replicas, rng, stats,
                        master_crash=master_crash,
                    )
                    if done > shuffle_done:
                        shuffle_done = done
            shuffle_done_times.append(shuffle_done)
        map_phase_end = max(map_end_times) if map_end_times else start

        # ---- reduce execution through the attempt state machine ----
        for r_index, (placement, task, shuffle_done) in enumerate(
            zip(placements, work.reduces, shuffle_done_times)
        ):
            attempts = TaskAttempts(f"r_{r_index:06d}", policy)
            reduce_end = self._run_reduce_to_success(
                task, r_index, attempts, placement, shuffle_done,
                map_phase_end, stragglers, reduce_fail_budget, rng, stats,
                master_crash=master_crash,
            )
            if reduce_end > end:
                end = reduce_end

        return end, map_phase_end

    # -- map attempts ---------------------------------------------------------

    def _run_map_to_success(
        self,
        task: MapWork,
        m_index: int,
        attempts: TaskAttempts,
        not_before: float,
        stragglers: set[str],
        lost_replicas: set[tuple[int, str]],
        fail_budget: dict[int, int],
        rng: random.Random,
        stats: _RunStats,
        reason: str = "task error",
        master_crash: tuple[float, float] | None = None,
    ) -> tuple[float, Node]:
        """Drive one map task's attempts until one succeeds (or the job dies)."""
        cluster = self.cluster
        plan = self.plan
        policy = self.policy
        t = not_before
        while True:
            exclude = set(self.blacklist.nodes)
            if policy.prefer_different_node:
                exclude |= attempts.tried_nodes
            node, slot, ready = self._pick_map_slot(task, t, exclude)
            attempt_start = self._clamp_downtime(max(ready, t), master_crash)
            window = self._partition_at(node.name, attempt_start)
            if window is not None:
                # Downtime clamping pushed the start into a partition
                # window; the tracker is unreachable — pick again after
                # it heals.
                t = window[1]
                continue
            attempt_no = len(attempts.attempts)
            self.fence.grant(attempts.task_id, attempt_no)
            # An attempt that might span the master crash is charged
            # against a checkpoint: if the crash orphans it, the cluster
            # is rolled back so its unfinished I/O does not keep occupying
            # the disk and NIC queues the retries will use.
            might_span = master_crash is not None and attempt_start < master_crash[0]
            cp = cluster.checkpoint() if might_span else None
            end = self._map_attempt_time(
                task, m_index, node, attempt_start, stragglers, lost_replicas,
                stats,
            )

            crash_time = self._crash_at.get(node.name)
            node_dies = crash_time is not None and attempt_start < crash_time < end
            master_dies = (
                master_crash is not None
                and attempt_start < master_crash[0] < end
            )
            if node_dies and (not master_dies or crash_time <= master_crash[0]):
                # The node dies under the attempt: killed, not failed.
                stats.attempts.append(attempts.record(
                    node.name, attempt_start, crash_time,
                    AttemptState.KILLED, "node lost",
                ))
                stats.killed_attempts += 1
                stats.wasted_seconds += crash_time - attempt_start
                node.procfs.record_task_kill()
                node.map_slot_free[slot] = crash_time
                t = crash_time + policy.heartbeat_timeout_s
                continue
            if master_dies:
                # The jobtracker dies under the attempt: the orphaned task
                # is killed and rescheduled once the master is back.
                cluster.restore(cp)
                stats.attempts.append(attempts.record(
                    node.name, attempt_start, master_crash[0],
                    AttemptState.KILLED, "jobtracker lost",
                ))
                stats.killed_attempts += 1
                stats.wasted_seconds += master_crash[0] - attempt_start
                node.procfs.record_task_kill()
                node.map_slot_free[slot] = master_crash[0]
                t = master_crash[1]
                continue
            p_window = self._partition_spanning(node.name, attempt_start, end)
            if p_window is not None:
                p_start, p_end = p_window
                if p_end - p_start <= policy.heartbeat_timeout_s:
                    # A blip shorter than the expiry interval goes
                    # unnoticed; the tracker reports completion when it
                    # rejoins.
                    end = max(end, p_end)
                else:
                    # The tracker went silent mid-attempt: the jobtracker
                    # declares it lost at the heartbeat timeout and
                    # reschedules.  The attempt *keeps running* on the
                    # isolated node (its I/O really happened), but when
                    # the node rejoins the zombie's commit is fenced by
                    # the canCommit check — a newer attempt owns the task.
                    lost_at = p_start + policy.heartbeat_timeout_s
                    self.fence.revoke(attempts.task_id, attempt_no)
                    self.fence.try_commit(attempts.task_id, attempt_no)
                    stats.attempts.append(attempts.record(
                        node.name, attempt_start, end, AttemptState.KILLED,
                        "fenced zombie attempt (partitioned tasktracker rejoined)",
                    ))
                    stats.killed_attempts += 1
                    stats.zombie_attempts_fenced += 1
                    stats.wasted_seconds += end - attempt_start
                    node.procfs.record_task_kill()
                    node.map_slot_free[slot] = end
                    t = lost_at
                    continue

            fails = fail_budget.get(m_index, 0) > attempts.failures or (
                plan.map_failure_rate > 0.0
                and rng.random() < plan.map_failure_rate
            )
            if fails:
                failure_time = attempt_start + (end - attempt_start) * plan.failure_point
                stats.attempts.append(attempts.record(
                    node.name, attempt_start, failure_time,
                    AttemptState.FAILED, reason,
                ))
                stats.failed_map_attempts += 1
                stats.wasted_seconds += failure_time - attempt_start
                node.procfs.record_task_failure()
                node.map_slot_free[slot] = failure_time
                self.blacklist.record_failure(node.name)
                attempts.check_exhausted(reason)
                t = attempts.next_retry_time(failure_time)
                continue

            # Success — possibly racing a speculative backup off a
            # straggler or a fail-slow (limping) node.
            node.map_slot_free[slot] = end
            if (
                plan.speculative_execution
                and (node.name in stragglers or node.name in self._limping_names)
                and len(cluster.slaves) > 1
            ):
                end, node = self._speculate_map(
                    task, m_index, node, slot, attempt_start, end,
                    stragglers, lost_replicas, stats, master_crash,
                )
            # canCommit: a tracker that never went silent still holds
            # its grant, so this always passes outside partitions.
            self.fence.try_commit(attempts.task_id, attempt_no)
            stats.attempts.append(attempts.record(
                node.name, attempt_start, end, AttemptState.SUCCEEDED,
                reason if reason != "task error" else "",
            ))
            self.job_history.record_completion(
                "map", attempts.task_id, node.name, attempt_start, end
            )
            return end, node

    def _map_attempt_time(
        self,
        task: MapWork,
        m_index: int,
        node: Node,
        at: float,
        stragglers: set[str],
        lost_replicas: set[tuple[int, str]],
        stats: _RunStats,
    ) -> float:
        """Charge one map attempt's I/O and CPU; return its finish time."""
        now = at
        if task.input_bytes:
            survivors = [
                name
                for name in task.preferred_nodes
                if (m_index, name) not in lost_replicas
                and not self._node_dead_at(name, now)
            ]
            if task.preferred_nodes and not survivors:
                raise DataLossError(
                    f"m_{m_index:06d}", 0,
                    "all replicas of the input split are gone",
                )
            if task.preferred_nodes:
                now = self._read_split_with_integrity(
                    task, m_index, node, now, survivors, stats
                )
            else:
                now = node.disk.read(now, task.input_bytes)
                node.procfs.record_checksum(
                    self.cluster.hdfs.checksum_chunks(task.input_bytes)
                )
        now += node.cpu_time(task.cpu_seconds)
        now = node.disk.write(now, task.output_bytes + TASK_LOG_BYTES)
        if node.name in stragglers:
            # A degraded node is slow across the board (thermal throttling,
            # dying disk): stretch the whole attempt.
            now = at + (now - at) * self.plan.straggler_factor
        return now

    def _read_split_with_integrity(
        self,
        task: MapWork,
        m_index: int,
        node: Node,
        at: float,
        survivors: list[str],
        stats: _RunStats,
    ) -> float:
        """Read the map's input split, verifying checksums end to end.

        Candidates are tried in the stock scheduler's order (the local
        replica first when it survived, then the survivor list), so with
        no corruption or partitions the charged I/O is bit-identical to
        the plain path.  A replica that trips the CRC check costs its
        read time, is reported to the namenode (drop + re-replicate),
        and the reader fails over to the next candidate; an unreachable
        (partitioned) holder is skipped, waiting for the earliest heal
        only when no other candidate exists.
        """
        cluster = self.cluster
        hdfs = cluster.hdfs
        split = task.split
        if split is not None:
            file_name, b_index = split
            hfile = hdfs.files.get(file_name)
            if hfile is None or b_index >= len(hfile.blocks):
                # Prebuilt work aimed at another namespace: no block to
                # verify against, so read with plain accounting.
                split = None
        if node.name in survivors:
            candidates = [node.name] + [s for s in survivors if s != node.name]
        else:
            candidates = list(survivors)
        now = at
        remaining = list(candidates)
        for _round in range(4):
            heal_times: list[float] = []
            for name in list(remaining):
                src = node if name == node.name else cluster._slave_by_name.get(name)
                if src is None:
                    # Replica holder unknown to this cluster (prebuilt
                    # work): stock fallback is a local read.
                    done = node.disk.read(now, task.input_bytes)
                    node.procfs.record_checksum(
                        hdfs.checksum_chunks(task.input_bytes)
                    )
                    return done
                if src is not node:
                    window = self._partition_at(name, now)
                    if window is not None:
                        heal_times.append(window[1])
                        continue
                if src is node:
                    done = node.disk.read(now, task.input_bytes)
                else:
                    read_done = src.disk.read(now, task.input_bytes)
                    done = self._transfer_with_integrity(
                        src, node, read_done, task.input_bytes, stats
                    )
                node.procfs.record_checksum(
                    hdfs.checksum_chunks(task.input_bytes)
                )
                if split is not None and hdfs.is_replica_corrupt(
                    file_name, b_index, name
                ):
                    # End-to-end CRC catches at-rest rot: the wasted read
                    # time stays in the attempt, the bad replica is
                    # reported, and the reader fails over.
                    node.procfs.record_checksum_failure()
                    stats.checksum_failures += 1
                    self._report_bad_replica(
                        file_name, b_index, name, done, node, stats
                    )
                    now = done
                    remaining.remove(name)
                    continue
                return done
            if not remaining or not heal_times:
                break
            now = max(now, min(heal_times))
        raise DataLossError(
            f"m_{m_index:06d}", 0, "no readable replica of the input split"
        )

    def _transfer_with_integrity(
        self, src: Node, dst: Node, at: float, num_bytes: int, stats: _RunStats
    ) -> float:
        """One network transfer, re-requested while in-flight bits flip."""
        plan = self.plan
        now = at
        done = now
        for _attempt in range(12):
            done = self.cluster.network.transfer(now, src.nic, dst.nic, num_bytes)
            if not (
                plan.transfer_corruption_rate > 0.0
                and self._gray_rng.random() < plan.transfer_corruption_rate
            ):
                return done
            # The receiver's CRC caught an in-flight flip: the payload is
            # discarded and re-requested from the same holder.
            dst.procfs.record_checksum(
                self.cluster.hdfs.checksum_chunks(num_bytes)
            )
            dst.procfs.record_checksum_failure()
            stats.checksum_failures += 1
            now = done
        # Pathological corruption rates: accept after bounded retries so
        # the simulation terminates (every flip above was still detected
        # and counted).
        return done

    def _report_bad_replica(
        self,
        file_name: str,
        index: int,
        node_name: str,
        at: float,
        reporter: Node,
        stats: _RunStats,
    ) -> None:
        """Report a rotten replica: drop it and re-replicate from a good one.

        Mirrors ``DFSClient.reportBadBlocks`` feeding the namenode's
        ``CorruptReplicasMap``: the marked replica is invalidated (never
        the block's last copy — then the marker just sticks) and the
        block re-replicated from a surviving good replica, with the
        repair I/O charged to the donor and recipient.
        """
        cluster = self.cluster
        hdfs = cluster.hdfs
        stats.bad_blocks_reported += 1
        reporter.procfs.record_bad_block_report()
        block = hdfs.report_bad_block(file_name, index, node_name)
        if block is None:
            return
        pair = hdfs.re_replicate_block(block)
        if pair is None:
            return
        src_name, dst_name = pair
        src = cluster._slave_by_name.get(src_name)
        dst = cluster._slave_by_name.get(dst_name)
        if src is None or dst is None or src is dst:
            return
        read_done = src.disk.read(at, block.size_bytes)
        sent = cluster.network.transfer(
            read_done, src.nic, dst.nic, block.size_bytes
        )
        dst.disk.write(sent, block.size_bytes)
        stats.re_replicated_bytes += block.size_bytes

    # -- partitions and scrubbing ---------------------------------------------

    def _partition_at(
        self, node_name: str, time_s: float
    ) -> tuple[float, float] | None:
        """The partition window covering *time_s* on *node_name*, if any."""
        for start, end in self._partition_windows.get(node_name, ()):
            if start <= time_s < end:
                return (start, end)
        return None

    def _partition_spanning(
        self, node_name: str, start_s: float, end_s: float
    ) -> tuple[float, float] | None:
        """The first partition window opening strictly inside the attempt."""
        for p_start, p_end in self._partition_windows.get(node_name, ()):
            if start_s < p_start < end_s:
                return (p_start, p_end)
        return None

    def _wait_out_partition(self, node_name: str, at: float) -> float:
        """Earliest time at/after *at* when *node_name* is reachable."""
        window = self._partition_at(node_name, at)
        while window is not None:
            at = window[1]
            window = self._partition_at(node_name, at)
        return at

    def _inject_corruption(self, work: JobWork, stats: _RunStats) -> None:
        """Rot replicas per the plan, always sparing one good copy per block."""
        plan = self.plan
        hdfs = self.cluster.hdfs
        for m_index, node_name in plan.corrupt_replicas:
            if m_index >= len(work.maps):
                continue
            split = work.maps[m_index].split
            if split is None:
                continue
            if self._corrupt_if_safe(split[0], split[1], node_name):
                stats.corrupt_replicas_injected += 1
        if plan.correlated_disk_failures and not self._rack_disks_injected:
            # A bad disk batch delivered to one rack: a seeded one-shot
            # sweep rots `count` replicas on the rack's nodes.  The
            # stream is independent of every other fault rng, and the
            # last-good-copy bound still holds, so a checksum-verifying
            # reader always survives the batch.
            self._rack_disks_injected = True
            rng = random.Random(f"rackdisk:{plan.seed}")
            for rack, count in plan.correlated_disk_failures:
                members = set(self.cluster.topology.nodes_in(rack))
                candidates = [
                    (file_name, b_index, replica)
                    for file_name in sorted(hdfs.files)
                    for b_index, block in enumerate(hdfs.files[file_name].blocks)
                    for replica in block.replicas
                    if replica in members
                ]
                rng.shuffle(candidates)
                injected = 0
                for file_name, b_index, replica in candidates:
                    if injected >= count:
                        break
                    if self._corrupt_if_safe(file_name, b_index, replica):
                        stats.corrupt_replicas_injected += 1
                        injected += 1
        if plan.corruption_rate <= 0.0:
            return
        # Rate-based bit rot: every replica is sampled exactly once over
        # the cluster's lifetime (new files are sampled as they appear),
        # from a stream independent of the task-failure rng.
        for file_name in sorted(hdfs.files):
            hfile = hdfs.files[file_name]
            for b_index, block in enumerate(hfile.blocks):
                for replica in block.replicas:
                    key = (file_name, b_index, replica)
                    if key in self._corruption_sampled:
                        continue
                    self._corruption_sampled.add(key)
                    if self._corruption_rng.random() >= plan.corruption_rate:
                        continue
                    if self._corrupt_if_safe(file_name, b_index, replica):
                        stats.corrupt_replicas_injected += 1

    def _corrupt_if_safe(
        self, file_name: str, b_index: int, node_name: str
    ) -> bool:
        """Mark one replica rotten unless it is the block's last good copy."""
        hdfs = self.cluster.hdfs
        hfile = hdfs.files.get(file_name)
        if hfile is None or b_index >= len(hfile.blocks):
            return False
        block = hfile.blocks[b_index]
        if node_name not in block.replicas:
            return False
        good = [
            r
            for r in block.replicas
            if r != node_name
            and not hdfs.is_replica_corrupt(file_name, b_index, r)
        ]
        if not good:
            return False
        return hdfs.corrupt_replica(file_name, b_index, node_name)

    def _scrub_pass(self, at: float, stats: _RunStats) -> float:
        """One DataBlockScanner sweep over every live datanode.

        The scanner reads the datanode's *local* disk, so a network
        partition does not stop the sweep — but a partitioned node's
        bad-block reports only reach the namenode once the link heals.
        """
        scanner = DataBlockScanner(self.cluster.hdfs)
        t_done = at
        for node in self.cluster.slaves:
            if self._node_dead_at(node.name, at):
                continue
            t, scanned, corrupt = scanner.scan_node(node, at)
            stats.scrubbed_bytes += scanned
            report_at = t
            window = self._partition_at(node.name, t)
            if window is not None:
                report_at = max(report_at, window[1])
            for block in corrupt:
                stats.checksum_failures += 1
                self._report_bad_replica(
                    block.file_name, block.index, node.name, report_at,
                    node, stats,
                )
            t_done = max(t_done, report_at if corrupt else t)
        return t_done

    def scrub(self, at: float | None = None) -> dict[str, float]:
        """Run one full scrub sweep now; returns a summary of the pass."""
        stats = _RunStats()
        start = self.cluster.clock if at is None else at
        t_done = self._scrub_pass(start, stats)
        return {
            "scrubbed_bytes": stats.scrubbed_bytes,
            "corrupt_found": stats.checksum_failures,
            "bad_blocks_reported": stats.bad_blocks_reported,
            "re_replicated_bytes": stats.re_replicated_bytes,
            "finished_at_s": t_done,
        }

    def _speculate_map(
        self,
        task: MapWork,
        m_index: int,
        node: Node,
        slot: int,
        attempt_start: float,
        end: float,
        stragglers: set[str],
        lost_replicas: set[tuple[int, str]],
        stats: _RunStats,
        master_crash: tuple[float, float] | None = None,
    ) -> tuple[float, Node]:
        """Launch a backup attempt on the fastest non-straggler node."""
        candidates = [
            n
            for n in self.cluster.slaves
            if n.name not in stragglers
            and n.name not in self._limping_names
            and not self.blacklist.is_blacklisted(n.name)
            and not self._node_dead_at(n.name, attempt_start)
            and self._partition_at(n.name, attempt_start) is None
            and not self.graylist.is_graylisted(n.name, attempt_start)
        ]
        if not candidates:
            return end, node
        stats.speculative_attempts += 1
        backup_node = min(
            candidates, key=lambda n: n.map_slot_free[n.earliest_map_slot()]
        )
        backup_slot = backup_node.earliest_map_slot()
        backup_start = self._clamp_downtime(
            max(backup_node.map_slot_free[backup_slot], attempt_start),
            master_crash,
        )
        might_span = master_crash is not None and backup_start < master_crash[0]
        cp = self.cluster.checkpoint() if might_span else None
        backup_end = self._map_attempt_time(
            task, m_index, backup_node, backup_start, stragglers, lost_replicas,
            stats,
        )
        if master_crash is not None and backup_start < master_crash[0] < backup_end:
            # The backup is orphaned by the jobtracker crash; the original
            # (which committed before the crash) stands.
            self.cluster.restore(cp)
            backup_node.procfs.record_speculative()
            stats.killed_attempts += 1
            stats.wasted_seconds += master_crash[0] - backup_start
            backup_node.procfs.record_task_kill()
            backup_node.map_slot_free[backup_slot] = master_crash[0]
            return end, node
        backup_node.procfs.record_speculative()
        if backup_end < end:
            # The jobtracker kills the slower original the moment the
            # backup commits — it does not run to completion.
            stats.speculative_wins += 1
            stats.killed_attempts += 1
            stats.wasted_seconds += max(0.0, backup_end - attempt_start)
            node.procfs.record_task_kill()
            backup_node.procfs.record_speculative_win()
            backup_node.map_slot_free[backup_slot] = backup_end
            node.map_slot_free[slot] = backup_end
            return backup_end, backup_node
        stats.wasted_seconds += backup_end - backup_start
        backup_node.map_slot_free[backup_slot] = backup_end
        node.map_slot_free[slot] = end
        return end, node

    # -- shuffle --------------------------------------------------------------

    def _fetch_segment(
        self,
        r_index: int,
        m_index: int,
        segment: int,
        reduce_node: Node,
        work: JobWork,
        map_end_times: list[float],
        map_nodes: list[Node],
        map_attempts: list[TaskAttempts],
        shuffle_faults: dict[tuple[int, int], int],
        stragglers: set[str],
        lost_replicas: set[tuple[int, str]],
        rng: random.Random,
        stats: _RunStats,
        master_crash: tuple[float, float] | None = None,
    ) -> float:
        """One reducer's copy of one map output, with bounded fetch retries.

        Each failed fetch still moves the bytes (the connection dies after
        the transfer — the pessimistic Hadoop case) and backs off before
        retrying; once ``max_fetch_retries`` fetches of the same output
        have failed, the reducer reports it and the jobtracker re-runs the
        map, after which the copy is served from the fresh output.
        """
        policy = self.policy
        faults = shuffle_faults.get((r_index, m_index), 0)
        fetch_at = map_end_times[m_index]
        failures = 0
        while faults > 0 and failures < policy.max_fetch_retries:
            done = self._transfer_segment(
                map_nodes[m_index], reduce_node, fetch_at, segment, stats
            )
            stats.shuffle_fetch_failures += 1
            stats.wasted_seconds += done - fetch_at
            reduce_node.procfs.record_fetch_failure()
            failures += 1
            faults -= 1
            fetch_at = done + policy.fetch_backoff_s(failures)
        if faults > 0:
            # Fetch-failure escalation: the jobtracker re-runs the map.
            stats.fetch_escalations += 1
            new_end, new_node = self._run_map_to_success(
                work.maps[m_index], m_index, map_attempts[m_index],
                fetch_at, stragglers, lost_replicas, {}, rng, stats,
                reason="too many fetch failures",
                master_crash=master_crash,
            )
            map_end_times[m_index] = new_end
            map_nodes[m_index] = new_node
            fetch_at = new_end
        return self._transfer_segment(
            map_nodes[m_index], reduce_node, fetch_at, segment, stats
        )

    def _transfer_segment(
        self, src: Node, dst: Node, at: float, segment: int, stats: _RunStats
    ) -> float:
        if src is dst:
            return src.disk.read(at, segment)
        # A partitioned endpoint stalls the fetch until the link heals.
        at = self._wait_out_partition(src.name, at)
        at = self._wait_out_partition(dst.name, at)
        read_done = src.disk.read(at, segment)
        return self._transfer_with_integrity(src, dst, read_done, segment, stats)

    # -- reduce attempts ------------------------------------------------------

    def _run_reduce_to_success(
        self,
        task,
        r_index: int,
        attempts: TaskAttempts,
        placement: tuple[Node, int, float],
        shuffle_done: float,
        map_phase_end: float,
        stragglers: set[str],
        fail_budget: dict[int, int],
        rng: random.Random,
        stats: _RunStats,
        master_crash: tuple[float, float] | None = None,
    ) -> float:
        cluster = self.cluster
        plan = self.plan
        policy = self.policy
        node, slot, _ready = placement
        t = 0.0
        while True:
            exec_start = self._clamp_downtime(
                max(shuffle_done, map_phase_end, node.reduce_slot_free[slot], t),
                master_crash,
            )
            window = self._partition_at(node.name, exec_start)
            if window is not None:
                # The chosen tracker is unreachable at launch time; pick
                # another slot once the partition heals.
                t = window[1]
                node, slot = self._pick_reduce_retry_slot(t, attempts.tried_nodes)
                continue
            attempt_no = len(attempts.attempts)
            self.fence.grant(attempts.task_id, attempt_no)
            might_span = master_crash is not None and exec_start < master_crash[0]
            cp = cluster.checkpoint() if might_span else None
            end = self._reduce_attempt_time(task, node, exec_start, stragglers)

            crash_time = self._crash_at.get(node.name)
            node_dies = crash_time is not None and exec_start < crash_time < end
            master_dies = (
                master_crash is not None and exec_start < master_crash[0] < end
            )
            if master_dies and not (node_dies and crash_time <= master_crash[0]):
                # The jobtracker dies under the reduce attempt: orphaned,
                # killed, and rescheduled once the master is back.
                cluster.restore(cp)
                stats.attempts.append(attempts.record(
                    node.name, exec_start, master_crash[0],
                    AttemptState.KILLED, "jobtracker lost",
                ))
                stats.killed_attempts += 1
                stats.wasted_seconds += master_crash[0] - exec_start
                node.procfs.record_task_kill()
                node.reduce_slot_free[slot] = master_crash[0]
                t = master_crash[1]
                node, slot = self._pick_reduce_retry_slot(t, attempts.tried_nodes)
                continue
            if node_dies:
                stats.attempts.append(attempts.record(
                    node.name, exec_start, crash_time,
                    AttemptState.KILLED, "node lost",
                ))
                stats.killed_attempts += 1
                stats.wasted_seconds += crash_time - exec_start
                node.procfs.record_task_kill()
                node.reduce_slot_free[slot] = crash_time
                if node.name not in self._crashes_processed:
                    self._crashes_processed.add(node.name)
                    stats.nodes_crashed.append(node.name)
                    self._re_replicate(
                        node.name, crash_time + policy.heartbeat_timeout_s, stats
                    )
                t = crash_time + policy.heartbeat_timeout_s
                node, slot = self._pick_reduce_retry_slot(t, attempts.tried_nodes)
                continue
            p_window = self._partition_spanning(node.name, exec_start, end)
            if p_window is not None:
                p_start, p_end = p_window
                if p_end - p_start <= policy.heartbeat_timeout_s:
                    # Unnoticed blip: completion reported at rejoin.
                    end = max(end, p_end)
                else:
                    # Zombie reduce on a partitioned tracker: rescheduled
                    # at the heartbeat timeout, fenced at commit when the
                    # node rejoins.
                    lost_at = p_start + policy.heartbeat_timeout_s
                    self.fence.revoke(attempts.task_id, attempt_no)
                    self.fence.try_commit(attempts.task_id, attempt_no)
                    stats.attempts.append(attempts.record(
                        node.name, exec_start, end, AttemptState.KILLED,
                        "fenced zombie attempt (partitioned tasktracker rejoined)",
                    ))
                    stats.killed_attempts += 1
                    stats.zombie_attempts_fenced += 1
                    stats.wasted_seconds += end - exec_start
                    node.procfs.record_task_kill()
                    node.reduce_slot_free[slot] = end
                    t = lost_at
                    node, slot = self._pick_reduce_retry_slot(
                        t, attempts.tried_nodes
                    )
                    continue

            fails = fail_budget.get(r_index, 0) > attempts.failures or (
                plan.reduce_failure_rate > 0.0
                and rng.random() < plan.reduce_failure_rate
            )
            if fails:
                failure_time = exec_start + (end - exec_start) * plan.failure_point
                stats.attempts.append(attempts.record(
                    node.name, exec_start, failure_time,
                    AttemptState.FAILED, "task error",
                ))
                stats.failed_reduce_attempts += 1
                stats.wasted_seconds += failure_time - exec_start
                node.procfs.record_task_failure()
                node.reduce_slot_free[slot] = failure_time
                self.blacklist.record_failure(node.name)
                attempts.check_exhausted("task error")
                t = attempts.next_retry_time(failure_time)
                exclude = attempts.tried_nodes if policy.prefer_different_node else set()
                node, slot = self._pick_reduce_retry_slot(t, exclude)
                continue

            # Success — possibly racing a speculative backup off a
            # straggler or a fail-slow (limping) node.
            if (
                plan.speculative_execution
                and (node.name in stragglers or node.name in self._limping_names)
                and len(cluster.slaves) > 1
            ):
                backup = self._speculate_reduce(
                    task, node, slot, exec_start, shuffle_done, map_phase_end,
                    end, stragglers, stats, master_crash,
                )
                if backup is not None:
                    end, node, slot = backup
            # canCommit for the reduce side (always passes outside
            # partitions — the tracker never went silent).
            self.fence.try_commit(attempts.task_id, attempt_no)
            stats.attempts.append(attempts.record(
                node.name, exec_start, end, AttemptState.SUCCEEDED,
            ))
            end = self._replicate_output(task, node, end)
            node.reduce_slot_free[slot] = end
            self.job_history.record_completion(
                "reduce", attempts.task_id, node.name, exec_start, end
            )
            return end

    def _reduce_attempt_time(
        self, task, node: Node, exec_start: float, stragglers: set[str]
    ) -> float:
        now = exec_start + node.cpu_time(task.cpu_seconds)
        now = node.disk.write(now, task.output_bytes + TASK_LOG_BYTES)
        if node.name in stragglers:
            now = exec_start + (now - exec_start) * self.plan.straggler_factor
        return now

    def _speculate_reduce(
        self,
        task,
        node: Node,
        slot: int,
        exec_start: float,
        shuffle_done: float,
        map_phase_end: float,
        end: float,
        stragglers: set[str],
        stats: _RunStats,
        master_crash: tuple[float, float] | None = None,
    ) -> tuple[float, Node, int] | None:
        """Backup reduce attempt on the fastest non-straggler node.

        The backup's shuffle is assumed to have run concurrently with the
        original's (reducers fetch eagerly), so only execution and output
        writing are charged to the backup node.
        """
        candidates = [
            n
            for n in self.cluster.slaves
            if n.name not in stragglers
            and n.name not in self._limping_names
            and not self.blacklist.is_blacklisted(n.name)
            and not self._node_dead_at(n.name, map_phase_end)
            and self._partition_at(n.name, map_phase_end) is None
            and not self.graylist.is_graylisted(n.name, map_phase_end)
        ]
        if not candidates:
            return None
        stats.speculative_attempts += 1
        backup_node = min(
            candidates,
            key=lambda n: n.reduce_slot_free[n.earliest_reduce_slot()],
        )
        backup_slot = backup_node.earliest_reduce_slot()
        backup_start = self._clamp_downtime(
            max(
                shuffle_done,
                map_phase_end,
                backup_node.reduce_slot_free[backup_slot],
            ),
            master_crash,
        )
        might_span = master_crash is not None and backup_start < master_crash[0]
        cp = self.cluster.checkpoint() if might_span else None
        backup_end = self._reduce_attempt_time(
            task, backup_node, backup_start, stragglers
        )
        if master_crash is not None and backup_start < master_crash[0] < backup_end:
            # The backup is orphaned by the jobtracker crash; the original
            # (which committed before the crash) stands.
            self.cluster.restore(cp)
            backup_node.procfs.record_speculative()
            stats.killed_attempts += 1
            stats.wasted_seconds += master_crash[0] - backup_start
            backup_node.procfs.record_task_kill()
            backup_node.reduce_slot_free[backup_slot] = master_crash[0]
            return None
        backup_node.procfs.record_speculative()
        if backup_end < end:
            # The jobtracker kills the slower original the moment the
            # backup commits — it does not run to completion.
            stats.speculative_wins += 1
            stats.killed_attempts += 1
            stats.wasted_seconds += max(0.0, backup_end - exec_start)
            node.procfs.record_task_kill()
            backup_node.procfs.record_speculative_win()
            node.reduce_slot_free[slot] = backup_end
            return backup_end, backup_node, backup_slot
        stats.wasted_seconds += backup_end - backup_start
        backup_node.reduce_slot_free[backup_slot] = backup_end
        return None

    def _replicate_output(self, task, node: Node, now: float) -> float:
        """HDFS replication of the reduce output: pipeline to live slaves."""
        cluster = self.cluster
        if not task.output_bytes:
            return now
        live = [
            n
            for n in cluster.slaves
            if not self._node_dead_at(n.name, now)
            and self._partition_at(n.name, now) is None
        ]
        if node not in live:
            return now
        copies = min(cluster.hdfs.replication - 1, len(live) - 1)
        for c in range(copies):
            dst = live[(live.index(node) + 1 + c) % len(live)]
            sent = cluster.network.transfer(
                now, node.nic, dst.nic, task.output_bytes
            )
            now = max(now, dst.disk.write(sent, task.output_bytes))
        return now

    # -- node loss and HDFS repair --------------------------------------------

    def _node_dead_at(self, node_name: str, time_s: float) -> bool:
        crash_time = self._crash_at.get(node_name)
        return crash_time is not None and time_s >= crash_time

    def _re_replicate(self, node_name: str, at: float, stats: _RunStats) -> None:
        """Namenode repair after datanode loss, charged to disks and NICs."""
        under_replicated, lost = self.cluster.hdfs.fail_node(node_name)
        stats.blocks_lost += len(lost)
        self._repair_blocks(under_replicated, at, stats)

    def _repair_blocks(self, under_replicated, at: float, stats: _RunStats) -> None:
        """Re-replicate *under_replicated* blocks, charging disks and NICs."""
        cluster = self.cluster
        for block in under_replicated:
            pair = cluster.hdfs.re_replicate_block(block)
            if pair is None:
                continue
            src_name, dst_name = pair
            src = cluster._slave_by_name.get(src_name)
            dst = cluster._slave_by_name.get(dst_name)
            if src is None or dst is None or src is dst:
                continue
            read_done = src.disk.read(at, block.size_bytes)
            sent = cluster.network.transfer(
                read_done, src.nic, dst.nic, block.size_bytes
            )
            dst.disk.write(sent, block.size_bytes)
            stats.re_replicated_bytes += block.size_bytes

    # -- slot selection -------------------------------------------------------

    def _pick_map_slot(
        self, task: MapWork, at: float, exclude: set[str]
    ) -> tuple[Node, int, float]:
        """Stock slot policy, minus excluded/blacklisted/dead nodes.

        Falls back to ignoring the soft exclusions (tried nodes,
        blacklist) when they would leave no candidate; dead nodes are
        never eligible.
        """
        cluster = self.cluster
        preferred_racks = cluster._preferred_racks(task)
        for soft_pass, soft_exclude in ((True, exclude), (False, set())):
            best_node, best_slot, best_time = None, -1, float("inf")
            local_node, local_slot, local_time = None, -1, float("inf")
            rack_node, rack_slot, rack_time = None, -1, float("inf")
            for node in cluster.slaves:
                if node.name in soft_exclude:
                    continue
                slot = node.earliest_map_slot()
                t = max(node.map_slot_free[slot], at)
                if self._node_dead_at(node.name, t):
                    continue
                # A partitioned tracker is unreachable (hard); a freshly
                # rejoined one is merely dodgy (soft — skipped unless it
                # is the only option left).
                if self._partition_at(node.name, t) is not None:
                    continue
                if soft_pass and self.graylist.is_graylisted(node.name, t):
                    continue
                if t < best_time:
                    best_node, best_slot, best_time = node, slot, t
                if (
                    task.preferred_nodes
                    and node.name in task.preferred_nodes
                    and t < local_time
                ):
                    local_node, local_slot, local_time = node, slot, t
                if (
                    preferred_racks
                    and t < rack_time
                    and cluster.topology.has_node(node.name)
                    and cluster.topology.rack_of(node.name) in preferred_racks
                ):
                    rack_node, rack_slot, rack_time = node, slot, t
            if local_node is not None and local_time <= best_time + cluster.locality_wait_s:
                return local_node, local_slot, local_time
            if rack_node is not None and rack_time <= (
                best_time + cluster.locality_wait_s + cluster.rack_locality_wait_s
            ):
                return rack_node, rack_slot, rack_time
            if best_node is not None:
                return best_node, best_slot, best_time
        raise JobFailedError("cluster", 0, "no live nodes left to schedule on")

    def _pick_reduce_slot(
        self, r_index: int, job_start: float, map_phase_end: float
    ) -> tuple[Node, int, float]:
        """Stock round-robin placement over the nodes alive at reduce time."""
        live = [
            n
            for n in self.cluster.slaves
            if not self._node_dead_at(n.name, map_phase_end)
            and not self.blacklist.is_blacklisted(n.name)
            and self._partition_at(n.name, map_phase_end) is None
        ]
        steady = [
            n for n in live
            if not self.graylist.is_graylisted(n.name, map_phase_end)
        ]
        if steady:
            live = steady
        if not live:
            raise JobFailedError("cluster", 0, "no live nodes left for reduces")
        node = live[r_index % len(live)]
        slot = node.earliest_reduce_slot()
        return node, slot, max(node.reduce_slot_free[slot], job_start)

    def _pick_reduce_retry_slot(
        self, at: float, exclude: set[str]
    ) -> tuple[Node, int]:
        for soft_pass, soft_exclude in ((True, exclude), (False, set())):
            candidates = [
                n
                for n in self.cluster.slaves
                if n.name not in soft_exclude
                and not self.blacklist.is_blacklisted(n.name)
                and not self._node_dead_at(
                    n.name, max(at, n.reduce_slot_free[n.earliest_reduce_slot()])
                )
                and self._partition_at(
                    n.name, max(at, n.reduce_slot_free[n.earliest_reduce_slot()])
                ) is None
                and not (
                    soft_pass
                    and self.graylist.is_graylisted(
                        n.name,
                        max(at, n.reduce_slot_free[n.earliest_reduce_slot()]),
                    )
                )
            ]
            if candidates:
                node = min(
                    candidates,
                    key=lambda n: n.reduce_slot_free[n.earliest_reduce_slot()],
                )
                return node, node.earliest_reduce_slot()
        raise JobFailedError("cluster", 0, "no live nodes left for reduces")
