"""Machine configuration (the paper's Table III).

The default :data:`XEON_E5645` configuration mirrors the hardware the paper
measures: a six-core Intel Xeon E5645 (Westmere) at 2.4 GHz with per-core
32 KB L1 caches, 256 KB L2, a shared 12 MB L3, 64-entry ITLB/DTLB and a
512-entry unified L2 TLB.

Because the reproduction feeds the core scaled-down traces (the paper's
inputs are 147–187 GB; ours are MB-scale), :func:`scaled_machine` can derive
a proportionally smaller hierarchy so that per-kilo-instruction miss ratios
remain meaningful at small trace lengths.  All experiments in
``benchmarks/`` state which configuration they use.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = 64
    hit_latency: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError(f"cache {self.name}: sizes must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ValueError(
                f"cache {self.name}: size {self.size_bytes} not divisible by "
                f"assoc*line ({self.associativity}*{self.line_bytes})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class TlbConfig:
    """Geometry of one TLB level."""

    name: str
    entries: int
    associativity: int
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.associativity <= 0:
            raise ValueError(f"tlb {self.name}: sizes must be positive")
        if self.entries % self.associativity != 0:
            raise ValueError(
                f"tlb {self.name}: entries {self.entries} not divisible by "
                f"associativity {self.associativity}"
            )

    @property
    def num_sets(self) -> int:
        return self.entries // self.associativity

    @property
    def reach_bytes(self) -> int:
        """Bytes of address space the TLB can map."""
        return self.entries * self.page_bytes


@dataclass(frozen=True)
class CoreConfig:
    """Pipeline widths, buffer sizes and penalties of one core."""

    fetch_width: int = 4
    decode_width: int = 4
    rename_width: int = 4
    issue_width: int = 6
    retire_width: int = 4
    rob_entries: int = 128
    rs_entries: int = 36
    load_buffer_entries: int = 48
    store_buffer_entries: int = 32
    mispredict_penalty: int = 15
    #: direction predictor kind: "bimodal" | "gshare" | "tournament".
    #: Westmere's front end uses a hybrid predictor; the tournament's
    #: bimodal component keeps large-footprint (service) code from
    #: suffering pure-gshare aliasing.
    predictor: str = "tournament"
    predictor_entries: int = 32768
    btb_entries: int = 4096
    btb_associativity: int = 4

    def __post_init__(self) -> None:
        for name in (
            "fetch_width",
            "decode_width",
            "rename_width",
            "issue_width",
            "retire_width",
            "rob_entries",
            "rs_entries",
            "load_buffer_entries",
            "store_buffer_entries",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"core config field {name} must be positive")


@dataclass(frozen=True)
class MachineConfig:
    """Full machine description: core + cache/TLB hierarchy + memory."""

    name: str = "Intel Xeon E5645"
    frequency_ghz: float = 2.4
    cores: int = 6
    threads: int = 12
    sockets: int = 2
    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 32 * 1024, 4, 64, hit_latency=1)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 32 * 1024, 8, 64, hit_latency=4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 256 * 1024, 8, 64, hit_latency=10)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig("L3", 12 * 1024 * 1024, 16, 64, hit_latency=38)
    )
    itlb: TlbConfig = field(default_factory=lambda: TlbConfig("ITLB", 64, 4))
    dtlb: TlbConfig = field(default_factory=lambda: TlbConfig("DTLB", 64, 4))
    l2tlb: TlbConfig = field(default_factory=lambda: TlbConfig("L2TLB", 512, 4))
    memory_latency: int = 180
    page_walk_latency: int = 30
    #: DRAM channel occupancy per 64-byte line (bandwidth model): at
    #: 2.4 GHz a core's fair share of sustained socket bandwidth is
    #: ~5 GB/s, i.e. ~30 cycles of channel occupancy per 64-byte line.
    #: Demand misses and prefetches both consume it.
    dram_cycles_per_line: int = 30
    #: next-line prefetcher on L2/L3 (Westmere has hardware prefetchers;
    #: without one, streaming workloads would be unrealistically slow).
    prefetch: bool = True
    #: hardware-virtualized execution (the paper's §V "VM executions"):
    #: page walks become two-dimensional (guest + EPT) and every
    #: user→kernel transition pays a VM-exit/entry round trip.
    virtualized: bool = False
    #: extra page-walk factor under nested paging (a 4-level guest walk
    #: needs up to 4 EPT walks → ~4x on Westmere-era parts).
    nested_walk_multiplier: int = 4
    #: cycles for a VM exit + resume pair (world switch + VMCS work).
    vm_transition_cycles: int = 600

    def describe(self) -> dict[str, str]:
        """Render the Table III rows for this machine."""
        kb = 1024
        return {
            "CPU Type": self.name,
            "# Cores": f"{self.cores} cores@{self.frequency_ghz}G",
            "# threads": f"{self.threads} threads",
            "# Sockets": str(self.sockets),
            "ITLB": f"{self.itlb.associativity}-way set associative, {self.itlb.entries} entries",
            "DTLB": f"{self.dtlb.associativity}-way set associative, {self.dtlb.entries} entries",
            "L2 TLB": f"{self.l2tlb.associativity}-way associative, {self.l2tlb.entries} entries",
            "L1 DCache": (
                f"{self.l1d.size_bytes // kb}KB, {self.l1d.associativity}-way associative, "
                f"{self.l1d.line_bytes} byte/line"
            ),
            "L1 ICache": (
                f"{self.l1i.size_bytes // kb}KB, {self.l1i.associativity}-way associative, "
                f"{self.l1i.line_bytes} byte/line"
            ),
            "L2 Cache": (
                f"{self.l2.size_bytes // kb} KB, {self.l2.associativity}-way associative, "
                f"{self.l2.line_bytes} byte/line"
            ),
            "L3 Cache": (
                f"{self.l3.size_bytes // kb // 1024} MB, {self.l3.associativity}-way associative, "
                f"{self.l3.line_bytes} byte/line"
            ),
            "Memory": "32 GB , DDR3",
        }


#: The paper's measurement machine (Table III).
XEON_E5645 = MachineConfig()


def virtualized_machine(base: MachineConfig = XEON_E5645) -> MachineConfig:
    """Return *base* running inside a hardware VM (nested paging)."""
    return replace(base, name=f"{base.name} (virtualized)", virtualized=True)


def hugepage_machine(
    base: MachineConfig = XEON_E5645, page_bytes: int = 2 * 1024 * 1024
) -> MachineConfig:
    """Return *base* with transparent huge pages (default 2 MB).

    The paper's CentOS 5.5 / kernel 2.6.34 predates transparent huge
    pages (merged in 2.6.38), so its Figure 8/11 walk rates are all
    4 KB-page numbers; this variant quantifies what THP would have
    bought.  Same TLB entry counts, ~512x the reach.
    """
    if page_bytes <= 0 or page_bytes & (page_bytes - 1):
        raise ValueError("page size must be a positive power of two")
    return replace(
        base,
        name=f"{base.name} ({page_bytes // (1024 * 1024)}MB pages)",
        itlb=replace(base.itlb, page_bytes=page_bytes),
        dtlb=replace(base.dtlb, page_bytes=page_bytes),
        l2tlb=replace(base.l2tlb, page_bytes=page_bytes),
    )


def scaled_machine(scale: int, base: MachineConfig = XEON_E5645) -> MachineConfig:
    """Return *base* with every cache/TLB capacity divided by ``scale``.

    Associativity, line size and page size are preserved; only the number
    of sets shrinks.  ``scale`` must divide each structure's set count.
    This keeps miss behaviour per kilo-instruction comparable when traces
    (and thus working sets) are scaled down from the paper's 147–187 GB
    inputs to MB-scale synthetic inputs.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if scale == 1:
        return base

    def shrink_cache(c: CacheConfig) -> CacheConfig:
        if c.num_sets % scale != 0:
            raise ValueError(f"scale {scale} does not divide {c.name} sets {c.num_sets}")
        return replace(c, size_bytes=c.size_bytes // scale)

    def shrink_tlb(t: TlbConfig) -> TlbConfig:
        if t.num_sets % scale != 0:
            raise ValueError(f"scale {scale} does not divide {t.name} sets {t.num_sets}")
        return replace(t, entries=t.entries // scale)

    return replace(
        base,
        name=f"{base.name} (1/{scale} hierarchy)",
        l1i=shrink_cache(base.l1i),
        l1d=shrink_cache(base.l1d),
        l2=shrink_cache(base.l2),
        l3=shrink_cache(base.l3),
        itlb=shrink_tlb(base.itlb),
        dtlb=shrink_tlb(base.dtlb),
        l2tlb=shrink_tlb(base.l2tlb),
    )
