"""Persistent content-addressed cache for simulation results.

Characterization work is heavily repetitive: the same (TraceSpec,
MachineConfig, warmup) triples are simulated over and over across figure
benchmarks, CLI invocations and CI jobs, and the simulator is fully
deterministic.  This module memoises :class:`~repro.uarch.pipeline.
SimulationResult`s on disk, content-addressed by a stable hash of

* the trace spec (every field, via ``dataclasses.asdict``),
* the machine config (every field, including nested cache/TLB/core configs),
* the warmup override, and
* the **code version** — a digest of the source bytes of every module that
  can influence a counter value, so any change to the timing model
  invalidates the whole cache automatically.

The engine (fast vs reference) is deliberately *not* part of the key: the
two engines are bit-identical by contract (see ``repro.perf.fastpath``),
so their results are interchangeable.  Cache hits are required to be
bit-identical to cold runs — ``tests/core/test_simcache.py`` round-trips
results through the store and compares every field.

Layout: one JSON file per result under ``.repro-cache/sim/<key[:2]>/<key>.json``
(the two-level fan-out keeps directories small).  Writes are atomic
(``os.replace`` of a same-directory temp file) so concurrent workers and
interrupted runs can never publish a torn file.

Escape hatches: ``REPRO_SIM_CACHE=0`` (or ``--no-sim-cache`` on the CLI and
pytest runs) disables the cache; ``REPRO_CACHE_DIR`` relocates it;
:func:`clear` invalidates it explicitly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path

from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import Core, SimulationResult
from repro.uarch.trace import SyntheticTrace, TraceSpec

#: Bump when the on-disk entry format (not the simulated values) changes.
SCHEMA_VERSION = 1

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Modules whose source bytes define the simulated counter values.  Any
#: edit to one of these produces a new code version and a cold cache.
_VERSIONED_MODULES = (
    "repro.uarch.isa",
    "repro.uarch.config",
    "repro.uarch.trace",
    "repro.uarch.caches",
    "repro.uarch.tlb",
    "repro.uarch.branch",
    "repro.uarch.frontend",
    "repro.uarch.backend",
    "repro.uarch.pipeline",
    "repro.perf.fastpath",
)

_code_version: str | None = None


def code_version() -> str:
    """Digest of the timing-model source files (cached per process)."""
    global _code_version
    if _code_version is None:
        digest = hashlib.sha256()
        import importlib

        for module_name in _VERSIONED_MODULES:
            module = importlib.import_module(module_name)
            path = getattr(module, "__file__", None)
            digest.update(module_name.encode())
            if path and os.path.exists(path):
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _code_version = digest.hexdigest()[:16]
    return _code_version


def cache_enabled(default: bool = True) -> bool:
    """Honour the ``REPRO_SIM_CACHE`` escape hatch (0/false/off disable)."""
    value = os.environ.get("REPRO_SIM_CACHE")
    if value is None:
        return default
    return value.strip().lower() not in {"0", "false", "off", "no", ""}


def cache_dir(root: str | os.PathLike | None = None) -> Path:
    """Resolve the cache root (arg > ``REPRO_CACHE_DIR`` > default)."""
    if root is None:
        root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    return Path(root)


def sim_cache_key(
    spec: TraceSpec,
    machine: MachineConfig,
    warmup: int | None = None,
) -> str:
    """Stable content hash for one simulation's inputs.

    Every field of the spec and machine participates, so *any* change —
    instruction budget, a cache geometry, the predictor kind, a region
    footprint — produces a different key.  The digest also folds in the
    code version and schema version.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "code": code_version(),
        "warmup": warmup,
        "spec": dataclasses.asdict(spec),
        "machine": dataclasses.asdict(machine),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _entry_path(root: Path, key: str) -> Path:
    return root / "sim" / key[:2] / f"{key}.json"


def load_result(key: str, root: str | os.PathLike | None = None) -> SimulationResult | None:
    """Fetch a cached result by key, or None on miss/corruption."""
    path = _entry_path(cache_dir(root), key)
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    data = payload.get("result")
    if not isinstance(data, dict):
        return None
    try:
        return SimulationResult(**data)
    except TypeError:
        # Field mismatch from an old entry written before a schema bump.
        return None


def store_result(
    key: str, result: SimulationResult, root: str | os.PathLike | None = None
) -> None:
    """Persist *result* under *key* atomically (tmp file + rename)."""
    path = _entry_path(cache_dir(root), key)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": SCHEMA_VERSION,
        "code": code_version(),
        "result": dataclasses.asdict(result),
    }
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def clear(root: str | os.PathLike | None = None) -> int:
    """Explicit invalidation: delete every cached entry; return the count."""
    sim_root = cache_dir(root) / "sim"
    if not sim_root.exists():
        return 0
    count = sum(1 for _ in sim_root.rglob("*.json"))
    shutil.rmtree(sim_root)
    return count


class SimCache:
    """One cache handle with hit/miss accounting.

    ``simulate`` is the memoised twin of building a ``Core`` and running a
    trace: on a hit the stored result is returned without simulating; on a
    miss the chosen engine runs and the result is persisted.  Both paths
    return bit-identical values.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        enabled: bool | None = None,
    ) -> None:
        self.root = cache_dir(root)
        self.enabled = cache_enabled() if enabled is None else enabled
        self.hits = 0
        self.misses = 0

    def simulate(
        self,
        spec: TraceSpec,
        machine: MachineConfig,
        warmup: int | None = None,
        engine: str = "fast",
    ) -> SimulationResult:
        key = None
        if self.enabled:
            key = sim_cache_key(spec, machine, warmup)
            cached = load_result(key, self.root)
            if cached is not None:
                self.hits += 1
                return cached
        self.misses += 1
        if engine == "fast":
            from repro.perf.fastpath import run_fast

            result = run_fast(Core(machine), SyntheticTrace(spec), warmup=warmup)
        else:
            result = Core(machine).run(SyntheticTrace(spec), warmup=warmup)
        if key is not None:
            store_result(key, result, self.root)
        return result

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
