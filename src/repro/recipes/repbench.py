"""Redbench-style repetition benchmark for the materialization cache.

Redbench's headline: production warehouse users differ enormously in how
repetitive their query streams are, and the payoff of query/result
caching grows with that repetitiveness.  This harness reproduces the
shape of that result on the mini-Hive engine:

* build one warehouse (rankings + uservisits) per repetitiveness
  *bucket*;
* synthesize a query stream per bucket with a target repeat rate — each
  query is either a verbatim resubmission of an earlier statement
  (probability = the bucket's rate) or a freshly parameterized template
  draw from Hive-bench-shaped statements;
* run every stream through a :class:`~repro.hive.MaterializationCache`
  and report per-bucket hit rates and simulated latency wins.

The contract (pinned in ``tests/recipes/test_repbench.py`` and enforced
by the ``rep-bench`` CLI): hit rate is monotonically non-decreasing in
the bucket's repetition rate, and the most-repetitive bucket shows a
strictly positive latency win.  Everything is seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cluster.cluster import make_cluster
from repro.hive import HiveSession, MaterializationCache
from repro.mapreduce.engine import LocalEngine
from repro.workloads import datagen

__all__ = [
    "REPBENCH_TEMPLATES",
    "BucketReport",
    "RepetitionBenchReport",
    "run_repetition_benchmark",
]

#: Hive-bench-shaped statement templates; ``{p}`` is the varied literal.
#: Parameter ranges are wide enough that two independent fresh draws of
#: the same template almost never collide into an accidental repeat.
REPBENCH_TEMPLATES = (
    "SELECT pageURL, pageRank FROM rankings WHERE pageRank > {p}",
    "SELECT sourceIP, SUM(adRevenue) AS totalRevenue FROM uservisits "
    "WHERE sourceIP LIKE '%.{p}' GROUP BY sourceIP",
    "SELECT searchWord, COUNT(*) AS hits FROM uservisits "
    "WHERE searchWord LIKE '%{p}%' GROUP BY searchWord",
    "SELECT uv.sourceIP, SUM(uv.adRevenue) AS totalRevenue FROM rankings r "
    "JOIN uservisits uv ON r.pageURL = uv.destURL "
    "WHERE r.pageRank > {p} GROUP BY uv.sourceIP ORDER BY totalRevenue DESC LIMIT 5",
)

#: default target repeat rates, least to most repetitive (Redbench's
#: cluster axis compressed to five points)
DEFAULT_BUCKETS = (0.0, 0.25, 0.5, 0.75, 0.95)


@dataclass(frozen=True)
class BucketReport:
    """Cache payoff measured for one repetitiveness bucket."""

    bucket: str
    target_rate: float
    queries: int
    hits: int
    misses: int
    saved_s: float
    executed_s: float

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    @property
    def mean_effective_s(self) -> float:
        """Mean simulated latency per query with the cache in play."""
        return self.executed_s / self.queries if self.queries else 0.0

    @property
    def mean_cold_s(self) -> float:
        """What the mean latency would have been with every query cold."""
        return (
            (self.executed_s + self.saved_s) / self.queries if self.queries else 0.0
        )

    def to_dict(self) -> dict:
        return {
            "bucket": self.bucket,
            "target_rate": self.target_rate,
            "queries": self.queries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "saved_s": self.saved_s,
            "executed_s": self.executed_s,
            "mean_effective_s": self.mean_effective_s,
            "mean_cold_s": self.mean_cold_s,
        }


@dataclass(frozen=True)
class RepetitionBenchReport:
    """All buckets, least to most repetitive."""

    buckets: tuple[BucketReport, ...]
    cache_enabled: bool
    seed: int

    def hit_rates_monotone(self) -> bool:
        """Redbench's shape: payoff never shrinks as repetitiveness grows."""
        rates = [b.hit_rate for b in self.buckets]
        return all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))

    @property
    def top_bucket(self) -> BucketReport:
        return self.buckets[-1]

    def contract_holds(self) -> bool:
        """Monotone hit rates + a real latency win where repeats dominate."""
        if not self.cache_enabled:
            return True  # nothing to claim with the cache off
        return self.hit_rates_monotone() and self.top_bucket.saved_s > 0

    def to_dict(self) -> dict:
        return {
            "cache_enabled": self.cache_enabled,
            "seed": self.seed,
            "buckets": [b.to_dict() for b in self.buckets],
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"{'bucket':>8} {'queries':>8} {'hits':>6} {'hit_rate':>9} "
            f"{'saved_s':>9} {'mean_cold':>10} {'mean_eff':>9}"
        ]
        for b in self.buckets:
            lines.append(
                f"{b.bucket:>8} {b.queries:>8} {b.hits:>6} {b.hit_rate:>9.2f} "
                f"{b.saved_s:>9.3f} {b.mean_cold_s:>10.4f} {b.mean_effective_s:>9.4f}"
            )
        return lines


def _bucket_label(rate: float) -> str:
    return f"{int(round(rate * 100))}%"


def _query_stream(
    rate: float, queries: int, rng: random.Random
) -> list[str]:
    """One bucket's statement stream with the target repeat rate."""
    history: list[str] = []
    stream = []
    for _ in range(queries):
        if history and rng.random() < rate:
            sql = rng.choice(history)
        else:
            template = rng.choice(REPBENCH_TEMPLATES)
            sql = template.format(p=rng.randrange(10, 5000))
        history.append(sql)
        stream.append(sql)
    return stream


def _fresh_warehouse(num_slaves: int, scale: float) -> HiveSession:
    """A small rankings/uservisits warehouse on its own cluster.

    Each bucket gets its own tables (fresh uids), so cache entries can
    never leak between buckets even though the cache object is shared
    for per-bucket accounting.
    """
    cluster = make_cluster(num_slaves=num_slaves, map_slots=4, reduce_slots=2,
                           block_size=64 * 1024)
    session = HiveSession(engine=LocalEngine(), cluster=cluster)
    session.create_table(
        "rankings",
        [("pageURL", "string"), ("pageRank", "int"), ("avgDuration", "int")],
    )
    session.create_table(
        "uservisits",
        [
            ("sourceIP", "string"),
            ("destURL", "string"),
            ("adRevenue", "double"),
            ("searchWord", "string"),
        ],
    )
    num_pages = max(2, int(60 * scale))
    session.load_rows("rankings", datagen.generate_rankings(num_pages))
    session.load_rows(
        "uservisits",
        datagen.generate_uservisits(max(2, int(240 * scale)), num_pages),
    )
    return session


def run_repetition_benchmark(
    buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    queries_per_bucket: int = 24,
    seed: int = 0,
    scale: float = 1.0,
    num_slaves: int = 2,
    use_cache: bool = True,
) -> RepetitionBenchReport:
    """Run the per-bucket cache-payoff measurement.

    One shared :class:`MaterializationCache` serves every bucket with
    :attr:`~MaterializationCache.bucket` set to the bucket label, so the
    per-bucket split exercises the cache's own accounting; tables are
    rebuilt per bucket, so streams stay independent.
    """
    if any(not 0.0 <= rate <= 1.0 for rate in buckets):
        raise ValueError("bucket rates must be in [0, 1]")
    if list(buckets) != sorted(buckets):
        raise ValueError("bucket rates must be sorted ascending")
    if queries_per_bucket <= 0:
        raise ValueError("queries_per_bucket must be positive")
    # use_cache=True still defers to the REPRO_RESULT_CACHE escape hatch;
    # use_cache=False (--no-result-cache) forces the cache off outright.
    cache = MaterializationCache(enabled=None if use_cache else False)
    reports = []
    for rate in buckets:
        label = _bucket_label(rate)
        cache.bucket = label
        session = _fresh_warehouse(num_slaves, scale)
        session.result_cache = cache
        rng = random.Random(f"repbench:{seed}:{label}")
        hits = misses = 0
        saved_s = executed_s = 0.0
        for sql in _query_stream(rate, queries_per_bucket, rng):
            execution = session.execute(sql)
            if execution.cached:
                hits += 1
                saved_s += execution.saved_s
            else:
                misses += 1
                executed_s += execution.total_duration_s()
        reports.append(
            BucketReport(
                bucket=label,
                target_rate=rate,
                queries=queries_per_bucket,
                hits=hits,
                misses=misses,
                saved_s=saved_s,
                executed_s=executed_s,
            )
        )
    cache.bucket = None
    return RepetitionBenchReport(
        buckets=tuple(reports),
        cache_enabled=cache.enabled,
        seed=seed,
    )
