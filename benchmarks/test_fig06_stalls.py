"""Figure 6: pipeline stall breakdown of each workload.

Paper shape: both the data-analysis and the service workloads suffer
notable front-end (instruction fetch) stalls, but the *breakdown*
differs: the data-analysis workloads stall mostly in the out-of-order
part (paper: ~37 % RS-full + ~20 % ROB-full ≈ 57 %), the services before
it (paper: ~60 % RAT + ~13 % fetch ≈ 73 %).
"""

from conftest import run_once

from repro.core.metrics import average_metrics
from repro.core.report import render_stall_table


def test_fig06(benchmark, suite_chars, da_chars, service_chars):
    table = run_once(benchmark, lambda: render_stall_table(suite_chars))
    print()
    print(table)

    da_avg = average_metrics([c.metrics for c in da_chars])
    svc_avg = average_metrics([c.metrics for c in service_chars])

    # Data analysis: the OoO part dominates the stall cycles.
    assert da_avg.backend_stall_share() > 0.5
    rs_share = da_avg.stall_breakdown["rs_full"]
    rob_share = da_avg.stall_breakdown["rob_full"]
    assert rs_share + rob_share > 0.4  # paper: ~57 %
    # Services: stalls concentrate before the OoO part.
    assert svc_avg.frontend_stall_share() > 0.6  # paper: ~73 %
    assert svc_avg.stall_breakdown["rat"] > svc_avg.stall_breakdown["rs_full"]
    # Both families show notable fetch stalls (front-end inefficiency).
    assert da_avg.stall_breakdown["fetch"] > 0.05
    assert svc_avg.stall_breakdown["fetch"] > 0.05
    # The split is a *contrast*: services are more front-end-bound than DA.
    assert svc_avg.frontend_stall_share() > da_avg.frontend_stall_share() + 0.2
