"""SQL subset parser.

Grammar (case-insensitive keywords)::

    query     := SELECT items FROM table [alias]
                 [JOIN table [alias] ON qcol = qcol]
                 [WHERE condition]
                 [GROUP BY qcol {, qcol}]
                 [ORDER BY ocol [ASC|DESC]]
                 [LIMIT n]
    items     := '*' | item {, item}
    item      := qcol | agg '(' (qcol | '*') ')' [AS name]
    agg       := SUM | COUNT | AVG | MIN | MAX
    condition := disjunct {OR disjunct}
    disjunct  := term {AND term}
    term      := '(' condition ')' | predicate
    predicate := qcol op literal
               | qcol LIKE 'pattern'
               | qcol BETWEEN literal AND literal
               | qcol IN '(' literal {, literal} ')'
    op        := = | != | <> | < | <= | > | >=
    qcol      := [table_or_alias .] column

This covers every statement in the paper's Hive-bench (grep selection,
rankings filter, uservisits aggregation, and the rankings⋈uservisits join
with GROUP BY / ORDER BY / LIMIT).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


class HiveSyntaxError(ValueError):
    """Raised when a statement does not parse."""


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    """A possibly-qualified column reference."""

    column: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Aggregate:
    """An aggregate call: func over a column (or * for COUNT)."""

    func: str
    arg: ColumnRef | None  # None means COUNT(*)
    alias: str | None = None

    def default_name(self) -> str:
        if self.alias:
            return self.alias
        inner = str(self.arg) if self.arg else "*"
        return f"{self.func.lower()}({inner})"


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: a column or an aggregate."""

    expr: ColumnRef | Aggregate
    alias: str | None = None

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, Aggregate):
            return self.expr.default_name()
        return self.expr.column


@dataclass(frozen=True)
class Predicate:
    """column <op> literal.

    ``op`` is a comparison operator, ``"like"`` (value: %-pattern),
    ``"between"`` (value: (low, high) tuple) or ``"in"`` (value: tuple of
    literals).
    """

    column: ColumnRef
    op: str
    value: object


@dataclass(frozen=True)
class And:
    """Conjunction of conditions."""

    children: tuple

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("AND needs at least two children")


@dataclass(frozen=True)
class Or:
    """Disjunction of conditions."""

    children: tuple

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("OR needs at least two children")


#: A condition is a Predicate, And, or Or.
Condition = object


def condition_predicates(condition) -> list[Predicate]:
    """All leaf predicates of a condition tree."""
    if condition is None:
        return []
    if isinstance(condition, Predicate):
        return [condition]
    return [
        pred for child in condition.children for pred in condition_predicates(child)
    ]


@dataclass(frozen=True)
class JoinClause:
    table: str
    alias: str | None
    left: ColumnRef
    right: ColumnRef


@dataclass(frozen=True)
class OrderBy:
    column: str  # output-column name
    descending: bool = False


@dataclass
class Query:
    """Parsed SELECT statement."""

    table: str
    table_alias: str | None
    items: list[SelectItem]  # empty means SELECT *
    join: JoinClause | None = None
    where: object | None = None  # Predicate | And | Or
    group_by: list[ColumnRef] = field(default_factory=list)
    order_by: OrderBy | None = None
    limit: int | None = None

    @property
    def predicates(self) -> list[Predicate]:
        """All leaf predicates of the WHERE condition (flattened)."""
        return condition_predicates(self.where)

    @property
    def select_star(self) -> bool:
        return not self.items

    @property
    def aggregates(self) -> list[Aggregate]:
        return [item.expr for item in self.items if isinstance(item.expr, Aggregate)]

    @property
    def has_aggregation(self) -> bool:
        return bool(self.group_by) or bool(self.aggregates)


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^'\\]|\\.)*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|!=|<>|=|<|>|\(|\)|\*|,|\.)
    )
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "select", "from", "where", "and", "or", "group", "by", "order", "limit",
    "join", "on", "as", "like", "between", "in", "asc", "desc",
    "sum", "count", "avg", "min", "max",
    "create", "table", "drop",
}

AGG_FUNCS = {"sum", "count", "avg", "min", "max"}

COMPARISON_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}


def _tokenize(sql: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    sql = sql.strip().rstrip(";")
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if not match or match.end() == pos:
            raise HiveSyntaxError(f"cannot tokenize near: {sql[pos:pos + 20]!r}")
        pos = match.end()
        if match.group("string") is not None:
            raw = match.group("string")[1:-1].replace("\\'", "'")
            tokens.append(("string", raw))
        elif match.group("number") is not None:
            tokens.append(("number", match.group("number")))
        elif match.group("ident") is not None:
            word = match.group("ident")
            if word.lower() in KEYWORDS:
                tokens.append(("kw", word.lower()))
            else:
                tokens.append(("ident", word))
        else:
            tokens.append(("op", match.group("op")))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise HiveSyntaxError("unexpected end of statement")
        self.pos += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        if token and token[0] == kind and (value is None or token[1] == value):
            self.pos += 1
            return True
        return False

    def expect(self, kind: str, value: str | None = None) -> str:
        token = self.peek()
        if token is None or token[0] != kind or (value is not None and token[1] != value):
            want = value or kind
            got = token[1] if token else "end of statement"
            raise HiveSyntaxError(f"expected {want!r}, got {got!r}")
        self.pos += 1
        return token[1]

    # -- grammar --

    def parse(self) -> Query:
        self.expect("kw", "select")
        items = self._select_items()
        self.expect("kw", "from")
        table = self.expect("ident")
        alias = self._optional_alias()
        join = None
        if self.accept("kw", "join"):
            join = self._join_clause()
        where = None
        if self.accept("kw", "where"):
            where = self._condition()
        group_by: list[ColumnRef] = []
        if self.accept("kw", "group"):
            self.expect("kw", "by")
            group_by.append(self._column_ref())
            while self.accept("op", ","):
                group_by.append(self._column_ref())
        order_by = None
        if self.accept("kw", "order"):
            self.expect("kw", "by")
            column = self._order_target()
            descending = False
            if self.accept("kw", "desc"):
                descending = True
            else:
                self.accept("kw", "asc")
            order_by = OrderBy(column, descending)
        limit = None
        if self.accept("kw", "limit"):
            limit = int(self.expect("number"))
            if limit < 0:
                raise HiveSyntaxError("LIMIT must be non-negative")
        if self.peek() is not None:
            raise HiveSyntaxError(f"unexpected trailing token: {self.peek()[1]!r}")
        return Query(
            table=table,
            table_alias=alias,
            items=items,
            join=join,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
        )

    def _condition(self):
        """OR-separated disjunction (lowest precedence)."""
        children = [self._conjunct()]
        while self.accept("kw", "or"):
            children.append(self._conjunct())
        return children[0] if len(children) == 1 else Or(tuple(children))

    def _conjunct(self):
        """AND-separated conjunction."""
        children = [self._condition_term()]
        while self.accept("kw", "and"):
            children.append(self._condition_term())
        return children[0] if len(children) == 1 else And(tuple(children))

    def _condition_term(self):
        if self.accept("op", "("):
            inner = self._condition()
            self.expect("op", ")")
            return inner
        return self._predicate()

    def _select_items(self) -> list[SelectItem]:
        if self.accept("op", "*"):
            return []
        items = [self._select_item()]
        while self.accept("op", ","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        token = self.peek()
        if token and token[0] == "kw" and token[1] in AGG_FUNCS:
            func = self.next()[1]
            self.expect("op", "(")
            if self.accept("op", "*"):
                if func != "count":
                    raise HiveSyntaxError(f"{func.upper()}(*) is not supported")
                arg = None
            else:
                arg = self._column_ref()
            self.expect("op", ")")
            alias = self._as_alias()
            return SelectItem(Aggregate(func, arg, alias), alias)
        ref = self._column_ref()
        alias = self._as_alias()
        return SelectItem(ref, alias)

    def _as_alias(self) -> str | None:
        if self.accept("kw", "as"):
            return self.expect("ident")
        return None

    def _optional_alias(self) -> str | None:
        token = self.peek()
        if token and token[0] == "ident":
            return self.next()[1]
        return None

    def _join_clause(self) -> JoinClause:
        table = self.expect("ident")
        alias = self._optional_alias()
        self.expect("kw", "on")
        self.accept("op", "(")
        left = self._column_ref()
        self.expect("op", "=")
        right = self._column_ref()
        self.accept("op", ")")
        return JoinClause(table, alias, left, right)

    def _column_ref(self) -> ColumnRef:
        first = self.expect("ident")
        if self.accept("op", "."):
            return ColumnRef(self.expect("ident"), table=first)
        return ColumnRef(first)

    def _order_target(self) -> str:
        name = self.expect("ident")
        if self.accept("op", "."):
            return self.expect("ident")
        return name

    def _predicate(self) -> Predicate:
        column = self._column_ref()
        if self.accept("kw", "like"):
            kind, value = self.next()
            if kind != "string":
                raise HiveSyntaxError("LIKE expects a string pattern")
            return Predicate(column, "like", value)
        if self.accept("kw", "between"):
            low = self._literal()
            self.expect("kw", "and")
            high = self._literal()
            return Predicate(column, "between", (low, high))
        if self.accept("kw", "in"):
            self.expect("op", "(")
            values = [self._literal()]
            while self.accept("op", ","):
                values.append(self._literal())
            self.expect("op", ")")
            return Predicate(column, "in", tuple(values))
        token = self.next()
        if token[0] != "op" or token[1] not in COMPARISON_OPS:
            raise HiveSyntaxError(f"expected comparison operator, got {token[1]!r}")
        op = "!=" if token[1] == "<>" else token[1]
        value = self._literal()
        return Predicate(column, op, value)

    def _literal(self):
        kind, raw = self.next()
        if kind == "string":
            return raw
        if kind == "number":
            return float(raw) if "." in raw else int(raw)
        raise HiveSyntaxError(f"expected literal, got {raw!r}")


@dataclass(frozen=True)
class CreateTableAs:
    """``CREATE TABLE name AS <select>`` — materialise a query."""

    table: str
    query: Query


@dataclass(frozen=True)
class DropTable:
    """``DROP TABLE name``."""

    table: str


def parse_query(sql: str) -> Query:
    """Parse one SELECT statement into a :class:`Query`."""
    tokens = _tokenize(sql)
    if not tokens:
        raise HiveSyntaxError("empty statement")
    return _Parser(tokens).parse()


def parse_statement(sql: str):
    """Parse one statement: Query, CreateTableAs, or DropTable."""
    tokens = _tokenize(sql)
    if not tokens:
        raise HiveSyntaxError("empty statement")
    parser = _Parser(tokens)
    if parser.accept("kw", "create"):
        parser.expect("kw", "table")
        name = parser.expect("ident")
        parser.expect("kw", "as")
        return CreateTableAs(table=name, query=parser.parse())
    if parser.accept("kw", "drop"):
        parser.expect("kw", "table")
        name = parser.expect("ident")
        if parser.peek() is not None:
            raise HiveSyntaxError("unexpected tokens after DROP TABLE")
        return DropTable(table=name)
    return parser.parse()


def split_statements(script: str) -> list[str]:
    """Split a script on semicolons, respecting string literals."""
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    i = 0
    while i < len(script):
        ch = script[i]
        if in_string:
            current.append(ch)
            if ch == "\\" and i + 1 < len(script):
                current.append(script[i + 1])
                i += 1
            elif ch == "'":
                in_string = False
        elif ch == "'":
            in_string = True
            current.append(ch)
        elif ch == ";":
            text = "".join(current).strip()
            if text:
                statements.append(text)
            current = []
        else:
            current.append(ch)
        i += 1
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements
