"""Figure 12: branch misprediction ratio.

Paper shape: most data-analysis workloads mispredict less than the
services and less than SPECINT ("simple algorithms chosen for big data
always beat better sophisticated algorithms"); the HPCC programs'
regular loop nests mispredict the least.
"""

from conftest import run_once

from repro.core.report import render_figure_series, render_metric_table


def test_fig12(benchmark, suite_chars, chars_by_name, da_chars, service_chars, hpcc_chars):
    series = run_once(benchmark, lambda: render_figure_series(12, suite_chars))
    print()
    print(render_metric_table(12, suite_chars))

    da_avg = series["avg"]
    svc_min = min(c.metrics.branch_misprediction_ratio for c in service_chars)
    # DA average below every service workload.
    assert da_avg < svc_min
    # ... and below SPECINT (paper: "even for the CPU benchmark —
    # SPECINT").
    assert da_avg < chars_by_name["SPECINT"].metrics.branch_misprediction_ratio
    # HPCC mispredicts the least ("the branch behaviors have great
    # regularity").
    hpcc_avg = sum(
        c.metrics.branch_misprediction_ratio for c in hpcc_chars
    ) / len(hpcc_chars)
    assert hpcc_avg < da_avg
    assert hpcc_avg < 0.05
    # Everything stays within a believable envelope (paper y-axis: 8 %).
    assert all(c.metrics.branch_misprediction_ratio < 0.25 for c in suite_chars)
