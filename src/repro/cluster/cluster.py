"""The Hadoop cluster and its MapReduce job timeline executor.

:class:`HadoopCluster` mirrors the paper's testbed: one master plus N
slaves (four in the paper's characterization runs; 1/4/8 in the Figure 2
speedup study), 24 map and 12 reduce slots per slave, 1 GbE, local disks,
and HDFS block placement.

The *functional* execution of a job (running the actual map/reduce
functions over real records) lives in :mod:`repro.mapreduce`; that engine
derives a :class:`JobWork` — per-task byte counts and CPU work — which this
module schedules onto slots, disks and NICs to produce a
:class:`JobTimeline`.  All the cluster-level numbers the paper reports
(speedups, disk writes per second) come from these timelines.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.cluster.hdfs import Hdfs
from repro.cluster.journal import FsImage, NameNodeJournal, restore_into, snapshot
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.topology import Topology

#: Bytes of task logs / job-history records each task writes locally
#: (tasktracker logging — visible in /proc disk counters even for jobs
#: with tiny outputs).
TASK_LOG_BYTES = 2048


class StaleClusterError(RuntimeError):
    """Raised when a job is submitted to a cluster whose slot state is
    ahead of its clock — a partially-restored or hand-mutated cluster.

    Hadoop's jobtracker refuses work while tasktrackers report state it
    cannot reconcile; likewise :meth:`HadoopCluster.run_job` refuses to
    silently schedule onto slots whose next-free times postdate the
    cluster clock.  Call :meth:`HadoopCluster.reset` or restore a
    consistent :class:`ClusterCheckpoint` first.
    """


@dataclass(frozen=True)
class MapWork:
    """Resource demand of one map task."""

    input_bytes: int
    cpu_seconds: float
    output_bytes: int
    preferred_nodes: tuple[str, ...] = ()
    #: the HDFS block backing this task's split as ``(file_name, block
    #: index)``, when the input lives in HDFS — what lets the integrity
    #: read path consult real replica state (corruption, reported bad
    #: blocks) instead of just the placement hint above.
    split: tuple[str, int] | None = None

    def __post_init__(self) -> None:
        if self.input_bytes < 0 or self.output_bytes < 0 or self.cpu_seconds < 0:
            raise ValueError("map work amounts must be non-negative")


@dataclass(frozen=True)
class ReduceWork:
    """Resource demand of one reduce task."""

    shuffle_bytes: int
    cpu_seconds: float
    output_bytes: int

    def __post_init__(self) -> None:
        if self.shuffle_bytes < 0 or self.output_bytes < 0 or self.cpu_seconds < 0:
            raise ValueError("reduce work amounts must be non-negative")


@dataclass
class JobWork:
    """A whole job's worth of task demands (produced by the engine)."""

    name: str
    maps: list[MapWork]
    reduces: list[ReduceWork] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name.strip():
            raise ValueError("a job needs a non-empty name")
        if not self.maps:
            raise ValueError("a job needs at least one map task")


@dataclass(frozen=True)
class NodeCheckpoint:
    """Frozen copy of one node's discrete-event and /proc state."""

    map_slot_free: tuple[float, ...]
    reduce_slot_free: tuple[float, ...]
    disk_busy_until: float
    disk_pending_write_bytes: int
    nic_tx_busy_until: float
    nic_rx_busy_until: float
    procfs: object  # deep copy of the node's ProcFs


@dataclass(frozen=True)
class ClusterCheckpoint:
    """A restorable snapshot of the whole cluster's simulation state.

    Captures the clock, every node's slot/disk/NIC/procfs state, the
    network counters, the HDFS namespace (as an
    :class:`~repro.cluster.journal.FsImage`) and the NameNode journal, so
    an experiment can be snapshotted and resumed deterministically —
    restore + re-run reproduces the original timeline bit for bit.
    """

    clock: float
    network_transfers: int
    network_bytes_moved: int
    network_fabric_busy_until: float
    nodes: tuple[tuple[str, NodeCheckpoint], ...]
    fsimage: FsImage
    journal_state: tuple | None
    network_retransmits: int = 0
    network_retransmit_bytes: int = 0
    #: the gray-link rng's state, so restore + re-run reproduces the
    #: same segment-drop pattern bit for bit.
    network_rng_state: tuple | None = None
    # Two-tier fabric occupancy (trailing defaults keep checkpoints from
    # pre-topology code restorable).
    network_core_busy_until: float = 0.0
    network_uplink_busy: tuple[tuple[str, float], ...] = ()
    network_cross_rack_bytes: int = 0


@dataclass
class JobTimeline:
    """Timing outcome of one job on one cluster."""

    job_name: str
    start_s: float
    map_phase_end_s: float
    end_s: float
    map_tasks: int
    reduce_tasks: int
    disk_writes_per_second: dict[str, float]
    network_bytes: int
    #: map placements by delay-scheduling tier.  On a flat cluster the
    #: rack tier does not exist, so every non-local map counts off-rack.
    maps_node_local: int = 0
    maps_rack_local: int = 0
    maps_off_rack: int = 0
    #: node → rack for multi-rack runs (empty on flat clusters) — what
    #: lets locality/colocation analyses group per-node columns by rack.
    node_racks: dict[str, str] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        """JSON-serializable per-job report (see :mod:`repro.core.export`)."""
        return {
            "job_name": self.job_name,
            "start_s": self.start_s,
            "map_phase_end_s": self.map_phase_end_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "map_tasks": self.map_tasks,
            "reduce_tasks": self.reduce_tasks,
            "disk_writes_per_second": dict(self.disk_writes_per_second),
            "network_bytes": self.network_bytes,
            "maps_node_local": self.maps_node_local,
            "maps_rack_local": self.maps_rack_local,
            "maps_off_rack": self.maps_off_rack,
            "node_racks": dict(self.node_racks),
        }


class HadoopCluster:
    """Master + slaves + network + HDFS, with a job timeline executor."""

    def __init__(
        self,
        slaves: list[Node],
        master: Node | None = None,
        network: Network | None = None,
        block_size: int = 2 * 1024 * 1024,
        replication: int = 3,
        locality_wait_s: float = 0.02,
        journaling: bool = True,
        bytes_per_checksum: int = 512,
        topology: Topology | None = None,
        rack_locality_wait_s: float | None = None,
    ) -> None:
        if not slaves:
            raise ValueError("a cluster needs at least one slave")
        if locality_wait_s < 0:
            raise ValueError("locality wait must be non-negative")
        if rack_locality_wait_s is not None and rack_locality_wait_s < 0:
            raise ValueError("rack locality wait must be non-negative")
        self.master = master or Node("master")
        self.slaves = list(slaves)
        self.network = network or Network()
        #: failure-domain map (``None`` = the pre-topology flat cluster).
        #: Shared with HDFS placement, the network's rack accounting and
        #: the schedulers' rack-local tier.
        self.topology = topology
        if topology is not None and self.network.topology is None:
            self.network.topology = topology
        self.hdfs = Hdfs(
            self.slaves,
            block_size=block_size,
            replication=replication,
            bytes_per_checksum=bytes_per_checksum,
            topology=topology,
        )
        #: NameNode edit-log journaling: on by default because it is
        #: observationally free (pure bookkeeping, no simulated time), and
        #: it is what makes the namespace reconstructable after a master
        #: crash.  Pass ``journaling=False`` for a journal-less namenode.
        self.journal = (
            NameNodeJournal(self.hdfs, procfs=self.master.procfs)
            if journaling
            else None
        )
        #: how long a map task waits for a data-local slot before running
        #: remote (Hadoop's mapred.locality.wait, scaled to task times)
        self.locality_wait_s = locality_wait_s
        #: additional wait granted for a *rack-local* slot before falling
        #: all the way off-rack (the Fair Scheduler's second delay level);
        #: defaults to the node-local wait.  Only consulted on multi-rack
        #: topologies — a flat cluster never reaches the rack tier.
        self.rack_locality_wait_s = (
            rack_locality_wait_s
            if rack_locality_wait_s is not None
            else locality_wait_s
        )
        self.clock = 0.0
        self._slave_by_name = {node.name: node for node in self.slaves}
        self._slave_index = {node.name: i for i, node in enumerate(self.slaves)}
        self._node_racks_cache: dict[str, str] | None = None

    # -- helpers ------------------------------------------------------------

    def slave(self, name: str) -> Node:
        return self._slave_by_name[name]

    @property
    def total_map_slots(self) -> int:
        return sum(node.map_slots for node in self.slaves)

    @property
    def total_reduce_slots(self) -> int:
        return sum(node.reduce_slots for node in self.slaves)

    def reset(self) -> None:
        """Clear all timing/procfs state (fresh experiment)."""
        self.clock = 0.0
        self.network.reset()
        for node in [self.master, *self.slaves]:
            node.reset()
        if self.journal is not None:
            # Nodes rebuilt their ProcFs; re-point the journal's metrics.
            self.journal.procfs = self.master.procfs

    # -- checkpoint / restore --------------------------------------------------

    def checkpoint(self) -> ClusterCheckpoint:
        """Snapshot the entire simulation state for a later :meth:`restore`.

        The checkpoint is immutable and restorable any number of times;
        restore + re-run reproduces the original execution exactly (the
        scheduler is deterministic given equal state).
        """
        nodes = []
        for node in [self.master, *self.slaves]:
            nodes.append((
                node.name,
                NodeCheckpoint(
                    map_slot_free=tuple(node.map_slot_free),
                    reduce_slot_free=tuple(node.reduce_slot_free),
                    disk_busy_until=node.disk.busy_until,
                    disk_pending_write_bytes=node.disk._pending_write_bytes,
                    nic_tx_busy_until=node.nic.tx_busy_until,
                    nic_rx_busy_until=node.nic.rx_busy_until,
                    procfs=copy.deepcopy(node.procfs),
                ),
            ))
        return ClusterCheckpoint(
            clock=self.clock,
            network_transfers=self.network.transfers,
            network_bytes_moved=self.network.bytes_moved,
            network_fabric_busy_until=self.network.fabric_busy_until,
            nodes=tuple(nodes),
            fsimage=snapshot(self.hdfs),
            journal_state=(
                self.journal.checkpoint_state() if self.journal else None
            ),
            network_retransmits=self.network.retransmits,
            network_retransmit_bytes=self.network.retransmit_bytes,
            network_rng_state=self.network.rng_state(),
            network_core_busy_until=self.network.core_busy_until,
            network_uplink_busy=tuple(
                sorted(self.network.uplink_busy_until.items())
            ),
            network_cross_rack_bytes=self.network.cross_rack_bytes,
        )

    def restore(self, cp: ClusterCheckpoint) -> None:
        """Restore the state captured by :meth:`checkpoint`, in place.

        Node/network/HDFS objects keep their identity — every reference
        held elsewhere (scheduler wrappers, distributed inputs) sees the
        restored state.
        """
        by_name = {node.name: node for node in [self.master, *self.slaves]}
        saved = dict(cp.nodes)
        if set(by_name) != set(saved):
            raise ValueError("checkpoint is from a differently-shaped cluster")
        self.clock = cp.clock
        self.network.transfers = cp.network_transfers
        self.network.bytes_moved = cp.network_bytes_moved
        self.network.fabric_busy_until = cp.network_fabric_busy_until
        self.network.retransmits = cp.network_retransmits
        self.network.retransmit_bytes = cp.network_retransmit_bytes
        self.network.core_busy_until = cp.network_core_busy_until
        self.network.uplink_busy_until = dict(cp.network_uplink_busy)
        self.network.cross_rack_bytes = cp.network_cross_rack_bytes
        if cp.network_rng_state is not None:
            self.network.set_rng_state(cp.network_rng_state)
        for name, node_cp in saved.items():
            node = by_name[name]
            node.map_slot_free = list(node_cp.map_slot_free)
            node.reduce_slot_free = list(node_cp.reduce_slot_free)
            node.disk.busy_until = node_cp.disk_busy_until
            node.disk._pending_write_bytes = node_cp.disk_pending_write_bytes
            node.nic.tx_busy_until = node_cp.nic_tx_busy_until
            node.nic.rx_busy_until = node_cp.nic_rx_busy_until
            node.procfs = copy.deepcopy(node_cp.procfs)
            node.disk.procfs = node.procfs
            node.nic.procfs = node.procfs
        restore_into(self.hdfs, cp.fsimage)
        if self.journal is not None:
            self.journal.procfs = self.master.procfs
            if cp.journal_state is not None:
                self.journal.restore_state(cp.journal_state)

    # -- job execution --------------------------------------------------------

    def run_job(self, work: JobWork) -> JobTimeline:
        """Schedule *work* and advance the cluster clock; return the timeline.

        Scheduling policy (Hadoop-1-like):

        * map tasks go to the data-local node's earliest slot when that
          costs at most ``locality_wait`` over the globally earliest slot;
        * a map task reads its split (locally, or via the network from a
          replica holder), computes, and spills its output to local disk;
        * each reducer pulls its share of every map's output as that map
          finishes (local reads for co-located segments, network transfers
          otherwise), then computes, then writes its HDFS output locally
          plus ``replication - 1`` remote copies.
        """
        self.ensure_schedulable()
        start = self.clock
        net_bytes_before = self.network.bytes_moved
        for node in self.slaves:
            node.procfs.sample(start)

        locality_wait = self.locality_wait_s
        map_end_times: list[float] = []
        map_nodes: list[Node] = []
        map_outputs: list[int] = []
        for task in work.maps:
            _task_start, now, node, _slot = self._charge_map_task(
                task, start, locality_wait
            )
            map_end_times.append(now)
            map_nodes.append(node)
            map_outputs.append(task.output_bytes)

        return self._finish_reduce_phase(
            work, start, net_bytes_before, map_end_times, map_nodes, map_outputs
        )

    def ensure_schedulable(self) -> None:
        """Refuse to schedule onto a cluster whose slots are ahead of its clock."""
        stale = sorted(
            node.name
            for node in self.slaves
            if any(t > self.clock for t in node.map_slot_free)
            or any(t > self.clock for t in node.reduce_slot_free)
        )
        if stale:
            raise StaleClusterError(
                "cluster state is not schedulable: slot next-free times on "
                f"{', '.join(stale)} postdate the cluster clock "
                f"({self.clock:.6f}s) — this cluster was partially restored "
                "or mutated mid-job; call reset() or restore a consistent "
                "checkpoint before running a job"
            )

    def _charge_map_on(
        self, task: MapWork, node: Node, at: float, probe=None
    ) -> float:
        """Charge one map task's read/CPU/spill on *node* from time *at*.

        Returns the task's end time.  Pure charging — no slot bookkeeping —
        so the stock executor, the multi-job dispatcher and the fault
        schedulers all replay the exact same primitive sequence.  *probe*,
        when given, is told which node is about to take disk writes so
        per-job write accounting can avoid full-cluster snapshots.
        """
        if probe is not None:
            probe.note(node)
        now = at
        node.procfs.record_map_locality(self._map_locality_tier(task, node))
        if task.input_bytes:
            if task.preferred_nodes and node.name not in task.preferred_nodes:
                # Remote read: replica holder's disk, then the network.
                src = self._slave_by_name.get(task.preferred_nodes[0])
                if src is not None and src is not node:
                    read_done = src.disk.read(now, task.input_bytes)
                    now = self.network.transfer(
                        read_done, src.nic, node.nic, task.input_bytes
                    )
                else:
                    now = node.disk.read(now, task.input_bytes)
            else:
                now = node.disk.read(now, task.input_bytes)
            # Every HDFS read verifies its CRC32 chunks (pure
            # arithmetic riding on the read — no simulated time).
            node.procfs.record_checksum(
                self.hdfs.checksum_chunks(task.input_bytes)
            )
        now += node.cpu_time(task.cpu_seconds)
        return node.disk.write(now, task.output_bytes + TASK_LOG_BYTES)

    def _charge_map_task(
        self,
        task: MapWork,
        floor: float,
        locality_wait: float,
        rack_wait: float | None = None,
        probe=None,
    ) -> tuple[float, float, Node, int]:
        """Pick a slot (delay scheduling) and charge one map task.

        *floor* is the earliest time the task may start (the job's start
        in the stock single-job path; the owning job's dispatch floor in
        the multi-job path).  Returns ``(task_start, end, node, slot)``.
        """
        node, slot, ready = self._pick_map_slot(task, floor, locality_wait, rack_wait)
        task_start = max(ready, floor)
        now = self._charge_map_on(task, node, task_start, probe=probe)
        node.map_slot_free[slot] = now
        return task_start, now, node, slot

    def _finish_reduce_phase(
        self,
        work: JobWork,
        start: float,
        net_bytes_before: int,
        map_end_times: list[float],
        map_nodes: list[Node],
        map_outputs: list[int],
    ) -> JobTimeline:
        """Charge the reduce phase, advance the clock and build the timeline."""
        end, map_phase_end, _spans = self._charge_reduce_phase(
            work, start, map_end_times, map_nodes, map_outputs
        )
        self.clock = end
        rates: dict[str, float] = {}
        for node in self.slaves:
            node.procfs.sample(end)
            rates[node.name] = node.procfs.disk_writes_per_second()
        # Final placements by delay-scheduling tier (observational: the
        # tiers are re-derived from the already-charged assignments).
        tiers = [
            self._map_locality_tier(task, node)
            for task, node in zip(work.maps, map_nodes)
        ]
        node_racks = self._node_racks()
        return JobTimeline(
            job_name=work.name,
            start_s=start,
            map_phase_end_s=map_phase_end,
            end_s=end,
            map_tasks=len(work.maps),
            reduce_tasks=len(work.reduces),
            disk_writes_per_second=rates,
            network_bytes=self.network.bytes_moved - net_bytes_before,
            maps_node_local=tiers.count("node"),
            maps_rack_local=tiers.count("rack"),
            maps_off_rack=tiers.count("off"),
            node_racks=node_racks,
        )

    def _charge_reduce_phase(
        self,
        work: JobWork,
        start: float,
        map_end_times: list[float],
        map_nodes: list[Node],
        map_outputs: list[int],
        probe=None,
    ) -> tuple[float, float, list[tuple[Node, float, float]]]:
        """Shuffle + reduce + output replication (pure charging).

        Returns ``(end, map_phase_end, reduce_spans)`` where *reduce_spans*
        is one ``(node, exec_start, end)`` per reduce task — what the
        multi-job dispatcher records for slot-occupancy accounting.
        """
        map_phase_end = max(map_end_times) if map_end_times else start
        total_map_output = sum(map_outputs)

        end = map_phase_end
        reduce_spans: list[tuple[Node, float, float]] = []
        # Two passes keep simulated causality straight: every reducer's
        # shuffle reads are issued (at map-finish times) before any
        # reducer's output writes, as in a real run where the copy phase
        # overlaps and the writes come last.
        placements = [self._pick_reduce_slot(i, start) for i in range(len(work.reduces))]
        shuffle_done_times: list[float] = []
        for (node, _slot, ready), task in zip(placements, work.reduces):
            shuffle_done = max(ready, start)
            if total_map_output and task.shuffle_bytes:
                for m_end, m_node, m_out in zip(map_end_times, map_nodes, map_outputs):
                    segment = int(task.shuffle_bytes * (m_out / total_map_output))
                    if segment <= 0:
                        continue
                    if m_node is node:
                        done = m_node.disk.read(m_end, segment)
                    else:
                        read_done = m_node.disk.read(m_end, segment)
                        done = self.network.transfer(read_done, m_node.nic, node.nic, segment)
                    if done > shuffle_done:
                        shuffle_done = done
            shuffle_done_times.append(shuffle_done)
        for (node, slot, _ready), task, shuffle_done in zip(
            placements, work.reduces, shuffle_done_times
        ):
            exec_start = max(shuffle_done, map_phase_end, node.reduce_slot_free[slot])
            now = exec_start + node.cpu_time(task.cpu_seconds)
            if probe is not None:
                probe.note(node)
            now = node.disk.write(now, task.output_bytes + TASK_LOG_BYTES)
            if task.output_bytes:
                # HDFS replication: pipeline copies to other slaves.
                copies = min(self.hdfs.replication - 1, len(self.slaves) - 1)
                for c in range(copies):
                    dst = self.slaves[
                        (self._slave_index[node.name] + 1 + c) % len(self.slaves)
                    ]
                    sent = self.network.transfer(now, node.nic, dst.nic, task.output_bytes)
                    if probe is not None:
                        probe.note(dst)
                    now = max(now, dst.disk.write(sent, task.output_bytes))
            node.reduce_slot_free[slot] = now
            reduce_spans.append((node, exec_start, now))
            if now > end:
                end = now
        return end, map_phase_end, reduce_spans

    # -- locality / failure domains -------------------------------------------

    def _preferred_racks(self, task: MapWork) -> frozenset[str]:
        """Racks holding a replica of *task*'s split (empty on flat clusters)."""
        if self.topology is None or self.topology.is_flat or not task.preferred_nodes:
            return frozenset()
        return frozenset(
            self.topology.rack_of(name)
            for name in task.preferred_nodes
            if self.topology.has_node(name)
        )

    def _node_racks(self) -> dict[str, str]:
        """Node → rack for multi-rack clusters; empty when flat.

        Memoized: the topology is fixed at construction, and per-job
        timeline assembly asks for this map once per finished job.  A
        fresh dict is returned each call so callers may mutate theirs.
        """
        if self.topology is None or self.topology.is_flat:
            return {}
        if self._node_racks_cache is None:
            self._node_racks_cache = {
                node.name: self.topology.rack_of(node.name)
                for node in self.slaves
                if self.topology.has_node(node.name)
            }
        return dict(self._node_racks_cache)

    def _map_locality_tier(self, task: MapWork, node: Node) -> str:
        """Delay-scheduling tier (``node``/``rack``/``off``) of running
        *task* on *node*.  Tasks with no placement preference count as
        node-local (nothing was missed); without a multi-rack topology the
        rack tier does not exist, so every remote launch counts off-rack.
        """
        if not task.preferred_nodes or node.name in task.preferred_nodes:
            return "node"
        if (
            self.topology is not None
            and not self.topology.is_flat
            and self.topology.has_node(node.name)
            and self.topology.rack_of(node.name) in self._preferred_racks(task)
        ):
            return "rack"
        return "off"

    # -- slot selection --------------------------------------------------------

    def _pick_map_slot(
        self,
        task: MapWork,
        job_start: float,
        locality_wait: float,
        rack_wait: float | None = None,
    ) -> tuple[Node, int, float]:
        if rack_wait is None:
            rack_wait = self.rack_locality_wait_s
        best_node, best_slot, best_time = None, -1, float("inf")
        local_node, local_slot, local_time = None, -1, float("inf")
        rack_node, rack_slot, rack_time = None, -1, float("inf")
        preferred_racks = self._preferred_racks(task)
        for node in self.slaves:
            slot = node.earliest_map_slot()
            t = max(node.map_slot_free[slot], job_start)
            if t < best_time:
                best_node, best_slot, best_time = node, slot, t
            if task.preferred_nodes and node.name in task.preferred_nodes and t < local_time:
                local_node, local_slot, local_time = node, slot, t
            if (
                preferred_racks
                and t < rack_time
                and self.topology.has_node(node.name)
                and self.topology.rack_of(node.name) in preferred_racks
            ):
                rack_node, rack_slot, rack_time = node, slot, t
        if local_node is not None and local_time <= best_time + locality_wait:
            return local_node, local_slot, local_time
        # Second delay level (Fair Scheduler style): before going
        # off-rack, wait a further rack_locality_wait_s for a slot on a
        # rack that holds a replica.  preferred_racks is empty on flat
        # clusters, so this tier is unreachable there.
        if rack_node is not None and rack_time <= best_time + locality_wait + rack_wait:
            return rack_node, rack_slot, rack_time
        assert best_node is not None
        return best_node, best_slot, best_time

    def _pick_reduce_slot(self, r_index: int, job_start: float) -> tuple[Node, int, float]:
        node = self.slaves[r_index % len(self.slaves)]
        slot = node.earliest_reduce_slot()
        return node, slot, max(node.reduce_slot_free[slot], job_start)


def make_cluster(
    num_slaves: int = 4,
    map_slots: int = 24,
    reduce_slots: int = 12,
    block_size: int = 2 * 1024 * 1024,
    replication: int = 3,
    cpu_speed: float = 1.0,
    journaling: bool = True,
    bytes_per_checksum: int = 512,
    racks: int = 1,
) -> HadoopCluster:
    """Build a paper-shaped cluster: one master plus *num_slaves* slaves.

    ``racks`` splits the slaves into that many contiguous failure domains
    (:meth:`Topology.uniform`).  The default single rack builds no
    topology at all, so a one-rack cluster is bit-identical to the
    pre-topology model.
    """
    if num_slaves <= 0:
        raise ValueError("need at least one slave")
    if racks < 1:
        raise ValueError("need at least one rack")
    slaves = [
        Node(f"slave{i + 1}", map_slots=map_slots, reduce_slots=reduce_slots, cpu_speed=cpu_speed)
        for i in range(num_slaves)
    ]
    topology = (
        Topology.uniform([node.name for node in slaves], racks)
        if racks > 1
        else None
    )
    return HadoopCluster(
        slaves,
        block_size=block_size,
        replication=replication,
        journaling=journaling,
        bytes_per_checksum=bytes_per_checksum,
        topology=topology,
    )
