"""Sort — Table I row 1 (Hadoop example).

TeraSort-style total-order sort: identity map, range partitioner sampled
from the input, identity reduce.  Sort is the paper's OS-intensive
outlier: its input size equals its output size, its computation is a bare
comparison, so it moves the most bytes per instruction of any workload —
~24 % kernel-mode instructions (Figure 4) and the highest disk-write rate
(Figure 5).
"""

from __future__ import annotations

from typing import Any

from repro.cluster.cluster import HadoopCluster
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import JobConf, MapReduceJob
from repro.mapreduce.partitioner import make_range_partitioner
from repro.uarch.trace import MemoryRegion
from repro.workloads import datagen
from repro.workloads.base import DataAnalysisWorkload, WorkloadInfo, WorkloadRun, register


def _identity_map(key, value):
    yield key, value


def _identity_reduce(key, values):
    for value in values:
        yield key, value


@register
class SortWorkload(DataAnalysisWorkload):
    info = WorkloadInfo(
        name="Sort",
        input_description="150 GB documents",
        input_gb_low=150,
        retired_instructions_1e9=4578,
        source="Hadoop example",
        scenarios=(
            ("electronic commerce", "Document sorting"),
            ("search engine", "Pages sorting"),
            ("social network", "Pages sorting"),
        ),
        table1_row=1,
    )

    #: default record count at scale=1.0
    BASE_RECORDS = 60_000

    def run(
        self,
        scale: float = 1.0,
        cluster: HadoopCluster | None = None,
        engine: LocalEngine | None = None,
    ) -> WorkloadRun:
        engine = engine or LocalEngine()
        records = datagen.generate_sort_records(max(1, int(self.BASE_RECORDS * scale)))
        num_reduces = 16
        partitioner = make_range_partitioner(
            [key for key, _ in records[:: max(1, len(records) // 1000)]], num_reduces
        )
        job = MapReduceJob(
            _identity_map,
            _identity_reduce,
            JobConf(
                name="sort",
                num_reduces=num_reduces,
                # Bare comparisons: nearly no CPU per record; everything is
                # data movement — which is exactly why Sort is OS-bound.
                map_cost_per_record=2e-7,
                map_cost_per_byte=3e-9,
                reduce_cost_per_record=4e-7,
                reduce_cost_per_byte=3e-9,
            ),
            partitioner=partitioner,
        )
        result = engine.execute(job, records, cluster=cluster, input_name="sort-input")
        return self._merge_results(
            self.info.name, [result], result.output, records=len(records)
        )

    def uarch_profile(self) -> dict[str, Any]:
        return {
            # Input = output: the job is one long copy through comparator
            # code; memory ops dominate the mix.
            "load_fraction": 0.30,
            "store_fraction": 0.18,
            "fp_fraction": 0.0,
            # Streaming both the records and the merge runs; weights are
            # small because Table I's 30 instructions/byte mean the input
            # stream is touched rarely per instruction.
            "regions": (
                MemoryRegion("input-runs", 192 << 20, 0.25, "sequential"),
                MemoryRegion("merge-buffers", 8 << 20, 0.2, "sequential"),
                MemoryRegion("key-index", 2 << 20, 0.15, "random", burst=4,
                             hot_fraction=0.2, hot_weight=0.8),
            ),
            # §IV-A: "about 24% of kernel-mode instructions" — big
            # copy_user episodes from HDFS reads/writes and shuffle.
            "kernel_fraction": 0.24,
            "kernel_episode_len": 300,
            "kernel_buffer_bytes": 4 << 20,
            # Comparator branches depend on data but keys are random, so
            # comparisons are balanced; merge-loop control is regular.
            "branch_regularity": 0.96,
            "dep_mean": 3.0,
            "dep_density": 0.72,
        }
