"""K-means — Table I row 6 (Mahout).

Lloyd's algorithm as iterative MapReduce (Mahout's formulation): each map
task assigns its points to the nearest centroid and emits per-centroid
partial sums; a combiner pre-aggregates; the reducer computes the new
centroids.  Iterate until centroid movement falls under a threshold.
"""

from __future__ import annotations

import math
from typing import Any

from repro.cluster.cluster import HadoopCluster
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import JobConf, MapReduceJob
from repro.uarch.trace import MemoryRegion
from repro.workloads import datagen
from repro.workloads.base import DataAnalysisWorkload, WorkloadInfo, WorkloadRun, register


def squared_distance(a: tuple[float, ...], b: tuple[float, ...]) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b))


def nearest_centroid(point: tuple[float, ...], centroids: list[tuple[float, ...]]) -> int:
    best, best_d = 0, math.inf
    for i, c in enumerate(centroids):
        d = squared_distance(point, c)
        if d < best_d:
            best, best_d = i, d
    return best


def _make_assign_map(centroids: list[tuple[float, ...]]):
    def assign_map(_pid, point):
        cid = nearest_centroid(point, centroids)
        yield cid, (point, 1)

    return assign_map


def _partial_sum_combine(cid, partials):
    dims = len(partials[0][0])
    sums = [0.0] * dims
    count = 0
    for point, n in partials:
        count += n
        for d in range(dims):
            sums[d] += point[d]
    yield cid, (tuple(sums), count)


def _centroid_reduce(cid, partials):
    dims = len(partials[0][0])
    sums = [0.0] * dims
    count = 0
    for point, n in partials:
        count += n
        for d in range(dims):
            sums[d] += point[d]
    yield cid, tuple(s / count for s in sums)


@register
class KMeansWorkload(DataAnalysisWorkload):
    info = WorkloadInfo(
        name="K-means",
        input_description="150 GB vector",
        input_gb_low=150,
        retired_instructions_1e9=3227,
        source="mahout",
        scenarios=(
            ("search engine", "Image processing"),
            ("social network", "High-resolution landform classification"),
            ("electronic commerce", "classification"),
        ),
        table1_row=6,
    )

    BASE_POINTS = 4000
    K = 5
    MAX_ITERATIONS = 10
    TOLERANCE = 1e-3

    def run(
        self,
        scale: float = 1.0,
        cluster: HadoopCluster | None = None,
        engine: LocalEngine | None = None,
    ) -> WorkloadRun:
        engine = engine or LocalEngine()
        points, true_centers = datagen.generate_cluster_points(
            max(self.K, int(self.BASE_POINTS * scale)), num_clusters=self.K
        )
        centroids = [point for _, point in points[: self.K]]
        results = []
        iterations = 0
        for iteration in range(self.MAX_ITERATIONS):
            job = MapReduceJob(
                _make_assign_map(centroids),
                _centroid_reduce,
                JobConf(
                    name=f"kmeans-iter{iteration}",
                    num_reduces=min(4, self.K),
                    # K distance computations per point.
                    map_cost_per_record=1.2e-5,
                    map_cost_per_byte=1e-8,
                    reduce_cost_per_record=2e-6,
                ),
                combiner=_partial_sum_combine,
            )
            result = engine.execute(
                job, points, cluster=cluster, input_name=f"kmeans-in-{iteration}"
            )
            results.append(result)
            new_centroids = list(centroids)
            for cid, centroid in result.output:
                new_centroids[cid] = centroid
            shift = max(
                math.sqrt(squared_distance(old, new))
                for old, new in zip(centroids, new_centroids)
            )
            centroids = new_centroids
            iterations = iteration + 1
            if shift < self.TOLERANCE:
                break
        assignments = {
            pid: nearest_centroid(point, centroids) for pid, point in points
        }
        return self._merge_results(
            self.info.name,
            results,
            centroids,
            iterations=iterations,
            assignments=assignments,
            true_centers=true_centers,
            points=len(points),
        )

    def uarch_profile(self) -> dict[str, Any]:
        return {
            # Distance kernels: FP subtract/multiply/accumulate.
            "load_fraction": 0.30,
            "store_fraction": 0.06,
            "fp_fraction": 0.22,
            "regions": (
                # point vectors streamed each iteration
                MemoryRegion("points", 128 << 20, 0.2, "sequential"),
                # centroid array: tiny, L1-resident, revisited K times/point
                MemoryRegion("centroids", 64 << 10, 0.6, "random", burst=8,
                             hot_fraction=1.0),
            ),
            "kernel_fraction": 0.035,
            # K-bounded inner loops with compile-time trip counts.
            "loop_branch_fraction": 0.6,
            "mean_trip_count": 16.0,
            "branch_regularity": 0.98,
            # Per-dimension FP ops are independent; good ILP.
            "dep_mean": 4.0,
            "dep_density": 0.6,
        }
