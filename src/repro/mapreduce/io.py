"""Record I/O helpers: size accounting and distributed inputs.

The engine needs byte sizes for every record it moves (they drive the
cluster timing model and the job counters).  :func:`record_bytes` gives a
deterministic serialized-size estimate for the Python values workloads use
as keys and values.  :class:`DistributedInput` pairs a record set with an
HDFS file so map splits inherit block placement.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cluster.hdfs import Hdfs, HdfsFile


def value_bytes(value) -> int:
    """Deterministic serialized size (bytes) of one key or value."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8", errors="replace"))
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (tuple, list)):
        return 2 + sum(value_bytes(v) for v in value)
    if isinstance(value, dict):
        return 2 + sum(value_bytes(k) + value_bytes(v) for k, v in value.items())
    if hasattr(value, "nbytes"):  # numpy arrays
        return int(value.nbytes)
    raise TypeError(f"cannot size value of type {type(value).__name__}")


def record_bytes(key, value) -> int:
    """Size of one (key, value) record including framing overhead."""
    return 4 + value_bytes(key) + value_bytes(value)


def records_bytes(records: Iterable[tuple[object, object]]) -> int:
    return sum(record_bytes(k, v) for k, v in records)


class DistributedInput:
    """Records stored in HDFS: splits follow block boundaries.

    Created via :meth:`put`, which sizes the records, creates the HDFS
    file, and assigns contiguous record ranges to blocks proportionally to
    the block sizes — the analogue of writing a sequence file and letting
    the InputFormat split it per block.
    """

    def __init__(self, name: str, records: Sequence[tuple[object, object]], hfile: HdfsFile):
        self.name = name
        self.records = list(records)
        self.hfile = hfile
        self._split_ranges = self._compute_split_ranges()

    @classmethod
    def put(
        cls, hdfs: Hdfs, name: str, records: Sequence[tuple[object, object]]
    ) -> "DistributedInput":
        size = records_bytes(records)
        hfile = hdfs.create_file(name, max(size, 1))
        return cls(name, records, hfile)

    def _compute_split_ranges(self) -> list[tuple[int, int]]:
        total = len(self.records)
        nblocks = max(1, len(self.hfile.blocks))
        ranges = []
        start = 0
        for i in range(nblocks):
            end = total * (i + 1) // nblocks
            ranges.append((start, end))
            start = end
        return ranges

    @property
    def num_splits(self) -> int:
        return len(self._split_ranges)

    def split(self, index: int) -> list[tuple[object, object]]:
        start, end = self._split_ranges[index]
        return self.records[start:end]

    def split_bytes(self, index: int) -> int:
        if index < len(self.hfile.blocks):
            return self.hfile.blocks[index].size_bytes
        return records_bytes(self.split(index))

    def split_locations(self, index: int) -> tuple[str, ...]:
        if index < len(self.hfile.blocks):
            return self.hfile.blocks[index].replicas
        return ()

    def split_ref(self, index: int) -> tuple[str, int] | None:
        """``(file_name, block_index)`` of the split's HDFS block, if any.

        Lets the scheduler tie a map task back to the block it reads so
        checksum verification and bad-block reporting hit the right
        replica set.  Splits past the block list (tiny inputs) have no
        backing block.
        """
        if index < len(self.hfile.blocks):
            return (self.name, index)
        return None

    @property
    def size_bytes(self) -> int:
        return self.hfile.size_bytes

    def __len__(self) -> int:
        return len(self.records)
