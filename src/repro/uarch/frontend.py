"""In-order front end: instruction fetch through the L1I, ITLB and BTB.

The front end walks the micro-op stream and assigns each op the cycle at
which it leaves fetch.  It models:

* fetch bandwidth (``fetch_width`` ops/cycle),
* L1 instruction-cache misses (one cache access per 64-byte line change,
  miss latency stalls fetch — the paper's "instruction fetch stall"),
* ITLB misses and the completed page walks behind Figure 8,
* branch-mispredict redirects (the resolve-time bubble).

Stall cycles are accumulated in ``icache_stall_cycles`` and
``itlb_stall_cycles``; their sum is the Figure 6 "Instruction fetch_stall"
category.
"""

from __future__ import annotations

from repro.uarch.branch import BranchUnit
from repro.uarch.caches import CacheHierarchy
from repro.uarch.isa import MicroOp
from repro.uarch.tlb import TlbHierarchy

#: Pipeline stages between fetch and rename/dispatch (decode depth).
FRONT_DEPTH = 4

#: Cycles of an instruction-cache miss hidden by the decoupled fetch
#: buffer / decode queue before the back end starves.  An L2 code hit is
#: therefore almost free; L3 and memory code misses still stall fetch.
FETCH_HIDE = 8


class FetchEngine:
    """Assigns fetch cycles to micro-ops and accounts front-end stalls."""

    __slots__ = (
        "icache",
        "itlb",
        "branch_unit",
        "fetch_width",
        "mispredict_penalty",
        "fetch_time",
        "slots_used",
        "current_line",
        "line_shift",
        "icache_stall_cycles",
        "itlb_stall_cycles",
        "mispredict_stall_cycles",
        "fetched",
    )

    def __init__(
        self,
        icache: CacheHierarchy,
        itlb: TlbHierarchy,
        branch_unit: BranchUnit,
        fetch_width: int,
        mispredict_penalty: int,
    ) -> None:
        self.icache = icache
        self.itlb = itlb
        self.branch_unit = branch_unit
        self.fetch_width = fetch_width
        self.mispredict_penalty = mispredict_penalty
        self.fetch_time = 0
        self.slots_used = 0
        self.current_line = -1
        self.line_shift = icache.l1.config.line_bytes.bit_length() - 1
        self.icache_stall_cycles = 0
        self.itlb_stall_cycles = 0
        self.mispredict_stall_cycles = 0
        self.fetched = 0

    def fetch(self, uop: MicroOp) -> int:
        """Fetch one micro-op; return the cycle it becomes available."""
        line = uop.pc >> self.line_shift
        if line != self.current_line:
            self.current_line = line
            # New line: translate and access the instruction cache.
            tlb_latency = self.itlb.translate(uop.pc)
            if tlb_latency:
                self.fetch_time += tlb_latency
                self.itlb_stall_cycles += tlb_latency
                self.slots_used = 0
            hit_latency = self.icache.l1.config.hit_latency
            latency = self.icache.access(uop.pc)
            if latency > hit_latency:
                stall = latency - hit_latency - FETCH_HIDE
                if stall > 0:
                    self.fetch_time += stall
                    self.icache_stall_cycles += stall
                    self.slots_used = 0
        cycle = self.fetch_time
        self.slots_used += 1
        if self.slots_used >= self.fetch_width:
            self.fetch_time += 1
            self.slots_used = 0
        self.fetched += 1
        return cycle

    def redirect(self, resolve_cycle: int) -> None:
        """Branch mispredict: restart fetch after the resolving cycle."""
        restart = resolve_cycle + max(1, self.mispredict_penalty - FRONT_DEPTH)
        if restart > self.fetch_time:
            self.mispredict_stall_cycles += restart - self.fetch_time
            self.fetch_time = restart
            self.slots_used = 0
            # The flush also invalidates the current fetch line register.
            self.current_line = -1

    #: Decode-repair bubble for a BTB misfetch (taken branch, target unknown).
    MISFETCH_BUBBLE = 3

    def misfetch(self) -> None:
        """BTB misfetch: the decoder redirects fetch with a short bubble."""
        self.fetch_time += self.MISFETCH_BUBBLE
        self.icache_stall_cycles += self.MISFETCH_BUBBLE
        self.slots_used = 0
