"""Characterize workloads on the simulated core — the measurement arc.

``characterize(entry)`` is the reproduction of the paper's Section III-D
methodology: build the workload's instruction stream, run it through a
core configured like the Xeon E5645 (Table III), discard a ramp-up
window, and read the ~20 hardware events into the Figure 3–12 metrics.

Because our traces are short relative to real runs (hundreds of thousands
of micro-ops instead of 10^12), both the machine's cache/TLB capacities
and the workload's declared footprints are divided by ``scale``
(default 8) so every footprint-to-capacity ratio matches the paper's
setup; latencies, widths and buffer sizes are untouched.  See DESIGN.md.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.core.metrics import Metrics
from repro.core.simcache import SimCache
from repro.core.suite import DCBench, SuiteEntry
from repro.perf.session import PerfReading, PerfSession
from repro.uarch.config import MachineConfig, scaled_machine
from repro.uarch.pipeline import Core, SimulationResult
from repro.uarch.trace import SyntheticTrace

#: Default trace length per workload (micro-ops).
DEFAULT_INSTRUCTIONS = 200_000

#: Default machine/footprint scaling factor.
DEFAULT_SCALE = 8


@dataclass
class Characterization:
    """Everything one characterization run produced."""

    name: str
    group: str
    result: SimulationResult
    metrics: Metrics
    reading: PerfReading

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Characterization {self.name} ipc={self.metrics.ipc:.2f} "
            f"l1i={self.metrics.l1i_mpki:.1f} l2={self.metrics.l2_mpki:.1f}>"
        )


#: Default simulation engine for characterization runs.  The fast engine
#: is bit-identical to the reference engine by contract (property-tested
#: in tests/uarch/test_fastpath.py), so it is safe as the default.
DEFAULT_ENGINE = "fast"


def characterize(
    entry: SuiteEntry,
    instructions: int = DEFAULT_INSTRUCTIONS,
    scale: int = DEFAULT_SCALE,
    machine: MachineConfig | None = None,
    warmup: int | None = None,
    seed: int | None = None,
    engine: str = DEFAULT_ENGINE,
    cache: "SimCache | None" = None,
) -> Characterization:
    """Measure one suite entry on a fresh simulated core.

    ``machine`` overrides the scaled Table III machine (ablation studies
    pass modified configs here — in that case ``scale`` is still used to
    shrink the *workload* footprints, so pass a machine scaled to match).

    ``engine`` selects ``"fast"`` (batched, default) or ``"reference"``
    (the per-μop interpreter).  Passing a :class:`~repro.core.simcache.
    SimCache` as ``cache`` memoises the simulation on disk; by default no
    cache is consulted, so tests that patch the model always see live runs.
    """
    if machine is None:
        machine = scaled_machine(scale)
    spec = entry.trace_spec(instructions, seed=seed).scaled(scale)
    if cache is not None:
        result = cache.simulate(spec, machine, warmup=warmup, engine=engine)
    elif engine == "fast":
        from repro.perf.fastpath import run_fast

        result = run_fast(Core(machine), SyntheticTrace(spec), warmup=warmup)
    else:
        result = Core(machine).run(SyntheticTrace(spec), warmup=warmup)
    metrics = Metrics.from_result(result)
    reading = PerfSession(machine=machine).measure_result(result)
    return Characterization(
        name=entry.name, group=entry.group, result=result, metrics=metrics, reading=reading
    )


def _characterize_task(args: tuple) -> Characterization:
    """Top-level (picklable) worker for the process pool."""
    entry, instructions, scale, machine, engine, use_cache, cache_root = args
    cache = SimCache(root=cache_root) if use_cache else None
    return characterize(
        entry,
        instructions=instructions,
        scale=scale,
        machine=machine,
        engine=engine,
        cache=cache,
    )


def resolve_workers(workers: int | str | None, jobs: int) -> int:
    """Normalise a ``workers`` argument to a concrete count.

    ``None`` or 1 → serial; ``"auto"`` → one worker per available CPU,
    capped at the number of jobs.
    """
    if workers is None:
        return 1
    if workers == "auto":
        return max(1, min(jobs, os.cpu_count() or 1))
    count = int(workers)
    if count < 1:
        raise ValueError("workers must be >= 1")
    return min(count, jobs) if jobs else 1


def characterize_suite(
    suite: DCBench | None = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    scale: int = DEFAULT_SCALE,
    machine: MachineConfig | None = None,
    engine: str = DEFAULT_ENGINE,
    workers: int | str | None = None,
    cache: "SimCache | None" = None,
) -> list[Characterization]:
    """Characterize every entry of *suite* (default: the full DCBench).

    ``workers`` fans entries out over a spawn-context
    :class:`~concurrent.futures.ProcessPoolExecutor` (``"auto"`` sizes the
    pool to the machine).  Results are returned in suite order regardless
    of completion order, and every simulation is seeded from its spec, so
    ``workers=N`` is bit-identical to ``workers=1``.
    """
    suite = suite or DCBench.default()
    entries = list(suite)
    count = resolve_workers(workers, len(entries))
    if count <= 1:
        return [
            characterize(
                entry,
                instructions=instructions,
                scale=scale,
                machine=machine,
                engine=engine,
                cache=cache,
            )
            for entry in entries
        ]
    # Spawn (not fork) for determinism and safety under pytest/threads;
    # futures are collected in submission order, so output order is stable.
    context = multiprocessing.get_context("spawn")
    tasks = [
        (entry, instructions, scale, machine, engine, cache is not None,
         str(cache.root) if cache is not None else None)
        for entry in entries
    ]
    with ProcessPoolExecutor(max_workers=count, mp_context=context) as pool:
        futures = [pool.submit(_characterize_task, task) for task in tasks]
        return [future.result() for future in futures]
