"""WfCommons-style execution instances: record what we actually ran.

An *instance* is the serialized record of one workload-mix execution —
per job: workload, scale, user, pool, submit/start/finish times, and for
Hive jobs the plan-template fingerprints of the statements the job runs.
WfCommons (SNIPPETS.md) fits "recipes" from exactly this kind of record
and regenerates synthetic-yet-realistic executions from them; the
analogue here is :func:`repro.recipes.fit.fit_recipe` →
:func:`repro.recipes.generate.generate_from_recipe`.

Two producers:

* :func:`record_instance` — full fidelity, from a
  :class:`~repro.cluster.tenancy.MixResult` (a trace actually played
  through ``run_mix``): start/finish/ideal times come from the shared-
  cluster schedule;
* :func:`instance_from_trace` — submit-only, from a bare
  :class:`~repro.cluster.tenancy.WorkloadTrace`: cheap enough to record
  arbitrarily long traces without simulating them.

The JSON form is validated on load and round-trips exactly:
``Instance.from_json(instance.to_json()) == instance``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace

from repro.cluster.tenancy import MixResult, TraceJob, WorkloadTrace

__all__ = [
    "INSTANCE_SCHEMA_VERSION",
    "InstanceSchemaError",
    "InstanceJob",
    "Instance",
    "record_instance",
    "instance_from_trace",
    "hive_plan_fingerprints",
]

#: bump when the on-disk instance format changes incompatibly
INSTANCE_SCHEMA_VERSION = "1.0"


class InstanceSchemaError(ValueError):
    """Raised when an instance document fails schema validation."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InstanceSchemaError(message)


def _is_number(value) -> bool:
    return not isinstance(value, bool) and isinstance(value, (int, float))


@dataclass(frozen=True)
class InstanceJob:
    """One recorded job submission (and, when executed, its schedule)."""

    index: int
    workload: str
    scale: float
    user: str
    pool: str
    size_class: str
    submit_s: float
    #: schedule facts; None in a submit-only instance
    start_s: float | None = None
    finish_s: float | None = None
    ideal_s: float | None = None
    job_ids: tuple[str, ...] = ()
    #: literal-masked template digests of the statements a Hive job runs
    plan_fingerprints: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _require(self.index >= 0, "job index must be non-negative")
        _require(bool(self.workload), "job workload must be non-empty")
        _require(
            self.scale > 0 and math.isfinite(self.scale),
            "job scale must be positive and finite",
        )
        _require(
            self.submit_s >= 0 and math.isfinite(self.submit_s),
            "job submit_s must be finite and non-negative",
        )
        executed = (self.start_s, self.finish_s)
        _require(
            all(v is None for v in executed) or all(v is not None for v in executed),
            "start_s and finish_s must be recorded together",
        )
        if self.start_s is not None:
            _require(
                self.start_s >= self.submit_s,
                "job cannot start before it was submitted",
            )
            _require(
                self.finish_s >= self.start_s,
                "job cannot finish before it started",
            )

    @property
    def exact_key(self) -> tuple[str, float]:
        """Identity of an *exact-template* repeat (Redbench's strictest bin)."""
        return (self.workload, self.scale)

    @property
    def template_key(self) -> str:
        """Identity of a *parameter-varied* repeat: same job template,
        any parameters (for Hive jobs the statement templates travel in
        :attr:`plan_fingerprints`, but they are a function of the
        workload here, so the workload name is the template)."""
        return self.workload

    def to_dict(self) -> dict:
        data = {
            "index": self.index,
            "workload": self.workload,
            "scale": self.scale,
            "user": self.user,
            "pool": self.pool,
            "size_class": self.size_class,
            "submit_s": self.submit_s,
            "start_s": self.start_s,
            "finish_s": self.finish_s,
            "ideal_s": self.ideal_s,
            "job_ids": list(self.job_ids),
            "plan_fingerprints": list(self.plan_fingerprints),
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "InstanceJob":
        _require(isinstance(data, dict), "instance job must be an object")
        missing = [name for name in _JOB_FIELDS if name not in data]
        _require(not missing, f"instance job missing field(s): {', '.join(missing)}")
        unknown = sorted(set(data) - set(_JOB_FIELDS))
        _require(not unknown, f"instance job has unknown field(s): {', '.join(unknown)}")
        _require(
            isinstance(data["index"], int) and not isinstance(data["index"], bool),
            "instance job index must be an integer",
        )
        for name in ("workload", "user", "pool", "size_class"):
            _require(
                isinstance(data[name], str) and bool(data[name]),
                f"instance job {name} must be a non-empty string",
            )
        for name in ("scale", "submit_s"):
            _require(_is_number(data[name]), f"instance job {name} must be a number")
        for name in ("start_s", "finish_s", "ideal_s"):
            _require(
                data[name] is None or _is_number(data[name]),
                f"instance job {name} must be a number or null",
            )
        for name in ("job_ids", "plan_fingerprints"):
            _require(
                isinstance(data[name], list)
                and all(isinstance(v, str) for v in data[name]),
                f"instance job {name} must be a list of strings",
            )
        return cls(
            index=data["index"],
            workload=data["workload"],
            scale=float(data["scale"]),
            user=data["user"],
            pool=data["pool"],
            size_class=data["size_class"],
            submit_s=float(data["submit_s"]),
            start_s=None if data["start_s"] is None else float(data["start_s"]),
            finish_s=None if data["finish_s"] is None else float(data["finish_s"]),
            ideal_s=None if data["ideal_s"] is None else float(data["ideal_s"]),
            job_ids=tuple(data["job_ids"]),
            plan_fingerprints=tuple(data["plan_fingerprints"]),
        )


_JOB_FIELDS = (
    "index", "workload", "scale", "user", "pool", "size_class", "submit_s",
    "start_s", "finish_s", "ideal_s", "job_ids", "plan_fingerprints",
)


@dataclass(frozen=True)
class Instance:
    """One recorded execution, WfCommons-style: header + job list."""

    name: str
    seed: int
    arrival_rate_per_s: float
    jobs: tuple[InstanceJob, ...]
    scheduler: str | None = None
    cluster: dict | None = None
    schema_version: str = INSTANCE_SCHEMA_VERSION

    def __post_init__(self) -> None:
        _require(bool(self.name), "instance name must be non-empty")
        _require(bool(self.jobs), "an instance needs at least one job")
        # 0 marks a hand-built trace (matching WorkloadTrace); fitting
        # then estimates the rate from the observed submit span instead.
        _require(
            self.arrival_rate_per_s >= 0 and math.isfinite(self.arrival_rate_per_s),
            "instance arrival_rate_per_s must be non-negative and finite",
        )
        submits = [job.submit_s for job in self.jobs]
        _require(
            submits == sorted(submits), "instance jobs must be sorted by submit_s"
        )
        _require(
            self.schema_version == INSTANCE_SCHEMA_VERSION,
            f"unsupported instance schema {self.schema_version!r} "
            f"(expected {INSTANCE_SCHEMA_VERSION!r})",
        )

    def users(self) -> list[str]:
        return sorted({job.user for job in self.jobs})

    def pools(self) -> list[str]:
        return sorted({job.pool for job in self.jobs})

    @property
    def span_s(self) -> float:
        """Submit-window length (first submission is relative to t=0)."""
        return self.jobs[-1].submit_s

    def to_trace(self) -> WorkloadTrace:
        """The replayable :class:`WorkloadTrace` of this instance."""
        jobs = tuple(
            TraceJob(
                index=i,
                workload=job.workload,
                scale=job.scale,
                arrival_s=job.submit_s,
                user=job.user,
                pool=job.pool,
                size_class=job.size_class,
            )
            for i, job in enumerate(self.jobs)
        )
        return WorkloadTrace(jobs, self.seed, self.arrival_rate_per_s)

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "seed": self.seed,
            "arrival_rate_per_s": self.arrival_rate_per_s,
            "scheduler": self.scheduler,
            "cluster": self.cluster,
            "jobs": [job.to_dict() for job in self.jobs],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "Instance":
        _require(isinstance(data, dict), "instance must be an object")
        for name in ("schema_version", "name", "seed", "arrival_rate_per_s", "jobs"):
            _require(name in data, f"instance missing field {name!r}")
        _require(
            isinstance(data["name"], str), "instance name must be a string"
        )
        _require(
            isinstance(data["seed"], int) and not isinstance(data["seed"], bool),
            "instance seed must be an integer",
        )
        _require(
            _is_number(data["arrival_rate_per_s"]),
            "instance arrival_rate_per_s must be a number",
        )
        scheduler = data.get("scheduler")
        _require(
            scheduler is None or isinstance(scheduler, str),
            "instance scheduler must be a string or null",
        )
        cluster = data.get("cluster")
        _require(
            cluster is None or isinstance(cluster, dict),
            "instance cluster must be an object or null",
        )
        _require(isinstance(data["jobs"], list), "instance jobs must be a list")
        return cls(
            name=data["name"],
            seed=data["seed"],
            arrival_rate_per_s=float(data["arrival_rate_per_s"]),
            jobs=tuple(InstanceJob.from_dict(job) for job in data["jobs"]),
            scheduler=scheduler,
            cluster=cluster,
            schema_version=data["schema_version"],
        )

    @classmethod
    def from_json(cls, text: str) -> "Instance":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise InstanceSchemaError(f"instance is not valid JSON: {error}") from None
        return cls.from_dict(data)


def hive_plan_fingerprints(workload_name: str) -> tuple[str, ...]:
    """Template digests of the statements a Hive job runs (empty for
    non-Hive workloads).

    Hive-bench executes a fixed statement suite, so the fingerprints are
    a pure function of the workload — computed once per process.
    """
    if workload_name != "Hive-bench":
        return ()
    global _HIVE_FINGERPRINTS
    if _HIVE_FINGERPRINTS is None:
        from repro.hive.planner import template_digest
        from repro.workloads.hive_bench import BENCH_QUERIES

        _HIVE_FINGERPRINTS = tuple(template_digest(sql) for sql in BENCH_QUERIES)
    return _HIVE_FINGERPRINTS


_HIVE_FINGERPRINTS: tuple[str, ...] | None = None


def record_instance(mix: MixResult, name: str = "recorded-mix") -> Instance:
    """Serialize a played mix — submit/start/finish per job, Hive plan
    fingerprints included — into a validated :class:`Instance`."""
    jobs = []
    for report in mix.reports:
        tjob = report.trace_job
        jobs.append(
            InstanceJob(
                index=tjob.index,
                workload=tjob.workload,
                scale=tjob.scale,
                user=tjob.user,
                pool=tjob.pool,
                size_class=tjob.size_class,
                submit_s=tjob.arrival_s,
                start_s=report.first_launch_s,
                finish_s=report.finished_s,
                ideal_s=report.ideal_s,
                job_ids=report.job_ids,
                plan_fingerprints=hive_plan_fingerprints(tjob.workload),
            )
        )
    return Instance(
        name=name,
        seed=mix.trace.seed,
        arrival_rate_per_s=mix.trace.arrival_rate_per_s,
        jobs=tuple(jobs),
        scheduler=mix.scheduler,
    )


def instance_from_trace(trace: WorkloadTrace, name: str = "trace") -> Instance:
    """A submit-only instance: the trace's submissions without running
    them (start/finish/ideal are null)."""
    jobs = tuple(
        InstanceJob(
            index=tjob.index,
            workload=tjob.workload,
            scale=tjob.scale,
            user=tjob.user,
            pool=tjob.pool,
            size_class=tjob.size_class,
            submit_s=tjob.arrival_s,
            plan_fingerprints=hive_plan_fingerprints(tjob.workload),
        )
        for tjob in trace.jobs
    )
    return Instance(
        name=name,
        seed=trace.seed,
        arrival_rate_per_s=trace.arrival_rate_per_s,
        jobs=jobs,
    )
