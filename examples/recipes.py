#!/usr/bin/env python3
"""Record a mix, fit a recipe, regenerate 10× the traffic, measure the
materialization cache's payoff per repetitiveness bucket.

The WfCommons loop on this repo's cluster model: one observed execution
(a hand-built mixed Hive + MapReduce trace played through the fair
scheduler) is serialized into a JSON *instance*, fitted into a *recipe*
(per-user workload mix, job sizes, arrival rate, Redbench-style
repetitiveness), and regenerated into a 10× longer synthetic trace that
statistically matches the source and replays through the same cluster.
The closing act is Redbench's headline: the Hive materialization cache's
hit rate — and the simulated seconds it saves — grows with how
repetitive a query stream is.

Run:  python examples/recipes.py
"""

from repro.cluster.scheduler import FairScheduler
from repro.cluster.tenancy import (
    TraceJob,
    WorkloadTrace,
    default_pools,
    run_mix,
)
from repro.recipes import (
    fit_recipe,
    generate_from_recipe,
    record_instance,
    run_repetition_benchmark,
)

CLUSTER = dict(num_slaves=2, map_slots=4, reduce_slots=2, block_size=64 * 1024)

#: a small mixed warehouse day: Hive-bench statements from two analysts
#: (ada resubmits her morning query verbatim — an exact repeat), batch
#: MapReduce from bo, interactive mice from carol
TRACE = WorkloadTrace(
    (
        TraceJob(0, "Hive-bench", 0.05, 0.00, "ada", "interactive", "small"),
        TraceJob(1, "Sort", 0.20, 0.10, "bo", "batch", "medium"),
        TraceJob(2, "Grep", 0.05, 0.25, "carol", "interactive", "small"),
        TraceJob(3, "Hive-bench", 0.05, 0.40, "ada", "interactive", "small"),
        TraceJob(4, "WordCount", 0.05, 0.55, "carol", "interactive", "small"),
        TraceJob(5, "Hive-bench", 0.08, 0.70, "ada", "interactive", "small"),
        TraceJob(6, "Grep", 0.06, 0.85, "carol", "interactive", "small"),
        TraceJob(7, "WordCount", 0.30, 1.00, "bo", "batch", "medium"),
    ),
    seed=0,
    arrival_rate_per_s=0.0,
)


def main() -> None:
    # 1. record: play the trace, serialize the execution
    mix = run_mix(TRACE, FairScheduler(pools=default_pools(TRACE)), **CLUSTER)
    instance = record_instance(mix, name="warehouse-day")
    hive_jobs = [job for job in instance.jobs if job.plan_fingerprints]
    print(f"recorded {len(instance.jobs)} jobs "
          f"({len(hive_jobs)} Hive, users: {', '.join(instance.users())}); "
          f"instance JSON is {len(instance.to_json())} bytes")

    # 2. fit: per-user mix, sizes, arrivals, repetitiveness
    recipe = fit_recipe(instance)
    print(f"\nfitted recipe: arrival rate "
          f"{recipe.arrival_rate_per_s:.2f}/s, overall repetition "
          f"{recipe.repetition_rate:.2f}")
    for user in recipe.users:
        mix_text = ", ".join(
            f"{t.workload} {t.weight:.0%}" for t in user.templates
        )
        print(f"  {user.user:<7s} exact {user.exact_repeat_rate:.2f}  "
              f"varied {user.varied_repeat_rate:.2f}  "
              f"bucket {user.bucket:<8s} mix: {mix_text}")

    # 3. regenerate 10x the traffic and replay it on the same cluster
    synthetic = generate_from_recipe(recipe, num_jobs=10 * len(TRACE.jobs),
                                     seed=1)
    replay = run_mix(synthetic, FairScheduler(pools=default_pools(synthetic)),
                     **CLUSTER)
    refit = fit_recipe(synthetic)
    print(f"\nregenerated {len(synthetic.jobs)} jobs "
          f"(10x the source) and replayed them: makespan "
          f"{replay.makespan_s:.2f}s, mean slowdown "
          f"{replay.mean_slowdown():.2f}x")
    print(f"synthetic trace refits to arrival rate "
          f"{refit.arrival_rate_per_s:.2f}/s with mix "
          + ", ".join(f"{w} {p:.0%}" for w, p in refit.workload_mix().items()))

    # 4. the Redbench headline: cache payoff grows with repetitiveness
    report = run_repetition_benchmark(queries_per_bucket=16)
    print("\nmaterialization-cache payoff per repetitiveness bucket:")
    for line in report.summary_lines():
        print(f"  {line}")
    print(f"hit rate monotone in repetitiveness: "
          f"{report.hit_rates_monotone()}; most-repetitive bucket saved "
          f"{report.top_bucket.saved_s:.3f} simulated seconds")


if __name__ == "__main__":
    main()
