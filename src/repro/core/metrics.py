"""The paper's metric set (Figures 3–12) derived from simulation counters."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uarch.pipeline import SimulationResult

#: Figure 6 stall categories, in the legend's order.
STALL_CATEGORIES = ("fetch", "rat", "load", "rs_full", "store", "rob_full")


@dataclass(frozen=True)
class Metrics:
    """One workload's characterization metrics.

    Attribute ↔ figure mapping:

    * ``ipc`` — Figure 3
    * ``kernel_instruction_fraction`` — Figure 4
    * ``stall_breakdown`` — Figure 6 (normalised, sums to 1 when any stalls)
    * ``l1i_mpki`` — Figure 7
    * ``itlb_walks_pki`` — Figure 8
    * ``l2_mpki`` — Figure 9
    * ``l3_hit_ratio_of_l2_misses`` — Figure 10 (Equation 1)
    * ``dtlb_walks_pki`` — Figure 11
    * ``branch_misprediction_ratio`` — Figure 12
    """

    ipc: float
    kernel_instruction_fraction: float
    l1i_mpki: float
    itlb_walks_pki: float
    l2_mpki: float
    l3_hit_ratio_of_l2_misses: float
    dtlb_walks_pki: float
    branch_misprediction_ratio: float
    stall_breakdown: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_result(cls, result: SimulationResult) -> "Metrics":
        return cls(
            ipc=result.ipc(),
            kernel_instruction_fraction=result.kernel_fraction(),
            l1i_mpki=result.l1i_mpki(),
            itlb_walks_pki=result.itlb_walks_pki(),
            l2_mpki=result.l2_mpki(),
            l3_hit_ratio_of_l2_misses=result.l3_hit_ratio_of_l2_misses(),
            dtlb_walks_pki=result.dtlb_walks_pki(),
            branch_misprediction_ratio=result.branch_misprediction_ratio(),
            stall_breakdown=result.stall_breakdown(),
        )

    def frontend_stall_share(self) -> float:
        """Share of stalls before the out-of-order part (fetch + RAT)."""
        return self.stall_breakdown.get("fetch", 0.0) + self.stall_breakdown.get("rat", 0.0)

    def backend_stall_share(self) -> float:
        """Share of stalls in the out-of-order part (RS/ROB/LB/SB)."""
        if not any(self.stall_breakdown.values()):
            return 0.0
        return 1.0 - self.frontend_stall_share()

    def value(self, metric: str) -> float:
        """Look up a scalar metric by name (figure helpers use this)."""
        if metric in STALL_CATEGORIES:
            return self.stall_breakdown.get(metric, 0.0)
        return getattr(self, metric)


def average_metrics(items: list[Metrics]) -> Metrics:
    """Arithmetic mean across workloads — the paper's "avg" bar."""
    if not items:
        raise ValueError("cannot average zero metric sets")
    n = len(items)
    breakdown = {
        cat: sum(m.stall_breakdown.get(cat, 0.0) for m in items) / n
        for cat in STALL_CATEGORIES
    }
    return Metrics(
        ipc=sum(m.ipc for m in items) / n,
        kernel_instruction_fraction=sum(m.kernel_instruction_fraction for m in items) / n,
        l1i_mpki=sum(m.l1i_mpki for m in items) / n,
        itlb_walks_pki=sum(m.itlb_walks_pki for m in items) / n,
        l2_mpki=sum(m.l2_mpki for m in items) / n,
        l3_hit_ratio_of_l2_misses=sum(m.l3_hit_ratio_of_l2_misses for m in items) / n,
        dtlb_walks_pki=sum(m.dtlb_walks_pki for m in items) / n,
        branch_misprediction_ratio=sum(m.branch_misprediction_ratio for m in items) / n,
        stall_breakdown=breakdown,
    )
