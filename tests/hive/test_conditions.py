"""Tests for the extended WHERE grammar: OR, parentheses, BETWEEN, IN."""

import random

import pytest

from repro.hive import HiveSession
from repro.hive.parser import (
    And,
    HiveSyntaxError,
    Or,
    Predicate,
    condition_predicates,
    parse_query,
)


@pytest.fixture
def session() -> HiveSession:
    s = HiveSession()
    s.create_table("t", [("name", "string"), ("x", "int"), ("y", "double")])
    rng = random.Random(5)
    s.load_rows(
        "t",
        [(f"n{i % 7}", rng.randrange(100), round(rng.random(), 3)) for i in range(400)],
    )
    return s


class TestParsing:
    def test_or_tree(self):
        q = parse_query("SELECT * FROM t WHERE a > 1 OR b < 2")
        assert isinstance(q.where, Or)
        assert len(q.where.children) == 2

    def test_and_binds_tighter_than_or(self):
        q = parse_query("SELECT * FROM t WHERE a > 1 OR b < 2 AND c = 3")
        assert isinstance(q.where, Or)
        assert isinstance(q.where.children[1], And)

    def test_parentheses_override_precedence(self):
        q = parse_query("SELECT * FROM t WHERE (a > 1 OR b < 2) AND c = 3")
        assert isinstance(q.where, And)
        assert isinstance(q.where.children[0], Or)

    def test_between(self):
        q = parse_query("SELECT * FROM t WHERE x BETWEEN 5 AND 10")
        assert isinstance(q.where, Predicate)
        assert q.where.op == "between"
        assert q.where.value == (5, 10)

    def test_between_inside_conjunction(self):
        q = parse_query("SELECT * FROM t WHERE x BETWEEN 5 AND 10 AND y = 1")
        assert isinstance(q.where, And)
        assert q.where.children[0].op == "between"

    def test_in_list(self):
        q = parse_query("SELECT * FROM t WHERE name IN ('a', 'b', 'c')")
        assert q.where.op == "in"
        assert q.where.value == ("a", "b", "c")

    def test_in_numbers(self):
        q = parse_query("SELECT * FROM t WHERE x IN (1, 2.5)")
        assert q.where.value == (1, 2.5)

    def test_predicates_property_flattens(self):
        q = parse_query("SELECT * FROM t WHERE a = 1 OR (b = 2 AND c = 3)")
        assert len(q.predicates) == 3

    def test_condition_predicates_none(self):
        assert condition_predicates(None) == []

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM t WHERE x BETWEEN 5",
            "SELECT * FROM t WHERE x IN ()",
            "SELECT * FROM t WHERE x IN (1",
            "SELECT * FROM t WHERE (x = 1",
            "SELECT * FROM t WHERE OR x = 1",
        ],
    )
    def test_rejects_malformed(self, sql):
        with pytest.raises(HiveSyntaxError):
            parse_query(sql)


class TestExecution:
    def _reference(self, session, fn):
        return {row for row in session.table("t").rows if fn(*row)}

    def test_or_semantics(self, session):
        r = session.execute("SELECT * FROM t WHERE x < 5 OR x > 95")
        expected = self._reference(session, lambda n, x, y: x < 5 or x > 95)
        assert set(r.rows) == expected

    def test_between_semantics(self, session):
        r = session.execute("SELECT * FROM t WHERE x BETWEEN 40 AND 60")
        expected = self._reference(session, lambda n, x, y: 40 <= x <= 60)
        assert set(r.rows) == expected

    def test_in_semantics(self, session):
        r = session.execute("SELECT * FROM t WHERE name IN ('n1', 'n4')")
        expected = self._reference(session, lambda n, x, y: n in ("n1", "n4"))
        assert set(r.rows) == expected

    def test_nested_condition_semantics(self, session):
        r = session.execute(
            "SELECT * FROM t WHERE (name = 'n0' OR name = 'n1') AND x >= 50"
        )
        expected = self._reference(
            session, lambda n, x, y: n in ("n0", "n1") and x >= 50
        )
        assert set(r.rows) == expected

    def test_or_with_aggregation(self, session):
        r = session.execute(
            "SELECT name, COUNT(*) AS n FROM t WHERE x < 10 OR x > 90 GROUP BY name"
        )
        counts = {}
        for n, x, _ in session.table("t").rows:
            if x < 10 or x > 90:
                counts[n] = counts.get(n, 0) + 1
        assert dict(r.rows) == counts

    def test_join_with_cross_side_or(self, session):
        session.create_table("u", [("name", "string"), ("z", "int")])
        session.load_rows("u", [(f"n{i % 7}", i) for i in range(20)])
        r = session.execute(
            "SELECT t.x, u.z FROM t JOIN u ON t.name = u.name "
            "WHERE t.x > 90 OR u.z > 17"
        )
        u_rows = [(f"n{i % 7}", i) for i in range(20)]
        expected = sorted(
            (x, z)
            for n, x, _ in session.table("t").rows
            for m, z in u_rows
            if n == m and (x > 90 or z > 17)
        )
        assert sorted(r.rows) == expected

    def test_join_pushdown_still_works_with_mixed_conjuncts(self, session):
        session.create_table("v", [("name", "string"), ("w", "int")])
        session.load_rows("v", [(f"n{i % 7}", i * 10) for i in range(14)])
        r = session.execute(
            "SELECT t.x, v.w FROM t JOIN v ON t.name = v.name "
            "WHERE t.x > 50 AND v.w BETWEEN 20 AND 80 AND (t.y > 0.5 OR v.w = 40)"
        )
        v_rows = [(f"n{i % 7}", i * 10) for i in range(14)]
        expected = sorted(
            (x, w)
            for n, x, y in session.table("t").rows
            for m, w in v_rows
            if n == m and x > 50 and 20 <= w <= 80 and (y > 0.5 or w == 40)
        )
        assert sorted(r.rows) == expected
