"""HDFS block placement model.

Files are split into fixed-size blocks, each replicated on ``replication``
distinct slave nodes (round-robin with a rotating offset, which is how a
balanced HDFS cluster ends up distributing a large sequentially-written
file).  The scheduler queries :meth:`Hdfs.nodes_with_block` for map-task
locality.

The namenode side of datanode loss is modelled too: :meth:`Hdfs.fail_node`
drops a dead node from every replica set (reporting which blocks became
under-replicated and which are gone entirely), and
:meth:`Hdfs.re_replicate_block` picks the source/target pair the namenode
would use to restore the replication degree — the cluster charges the
actual disk reads and network transfer for that background copy traffic.

Data integrity follows HDFS's end-to-end checksum design: every stored
block carries a CRC32 per ``io.bytes.per.checksum``-sized chunk
(:attr:`Hdfs.bytes_per_checksum`), and every read verifies them.  Bit-rot
is modelled as a ground-truth set of corrupt replicas
(:meth:`Hdfs.corrupt_replica`) that the *namenode does not know about*
until a client read or a :class:`DataBlockScanner` scrub trips
:class:`ChecksumError`; the detector then files
:meth:`Hdfs.report_bad_block` (journaled, like ``reportBadBlocks``), the
namenode invalidates the replica — mirroring Hadoop's
``CorruptReplicasMap``, it never invalidates a block's *last* replica —
and the caller re-replicates from a surviving good copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.attempts import DataLossError
from repro.cluster.node import Node
from repro.cluster.topology import Topology


class ChecksumError(IOError):
    """A read's CRC32 verification failed: the replica's bytes are rotten."""

    def __init__(self, file_name: str, index: int, node_name: str) -> None:
        super().__init__(
            f"checksum error reading {file_name!r} block {index} "
            f"replica on {node_name}"
        )
        self.file_name = file_name
        self.index = index
        self.node_name = node_name


@dataclass(frozen=True)
class Block:
    """One HDFS block."""

    file_name: str
    index: int
    size_bytes: int
    replicas: tuple[str, ...]


@dataclass
class HdfsFile:
    """A file: ordered blocks plus total size."""

    name: str
    blocks: list[Block] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return sum(b.size_bytes for b in self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)


class Hdfs:
    """Block-placement directory over the cluster's slave nodes."""

    def __init__(
        self,
        nodes: list[Node],
        block_size: int = 64 * 1024 * 1024,
        replication: int = 3,
        bytes_per_checksum: int = 512,
        topology: Topology | None = None,
    ):
        if not nodes:
            raise ValueError("HDFS needs at least one datanode")
        if block_size <= 0:
            raise ValueError("block size must be positive")
        if replication <= 0:
            raise ValueError("replication must be positive")
        if bytes_per_checksum <= 0:
            raise ValueError("bytes_per_checksum must be positive")
        if topology is not None:
            for node in nodes:
                if not topology.has_node(node.name):
                    raise ValueError(
                        f"datanode {node.name!r} is missing from the topology"
                    )
        self.nodes = list(nodes)
        self.block_size = block_size
        self.replication = min(replication, len(self.nodes))
        #: CRC32 chunk size, Hadoop's ``io.bytes.per.checksum`` (512 B).
        self.bytes_per_checksum = bytes_per_checksum
        #: failure-domain map; ``None`` (or a flat one-rack topology)
        #: keeps the pre-topology round-robin placement bit-identically.
        self.topology = topology
        self.files: dict[str, HdfsFile] = {}
        self._placement_cursor = 0
        self._dead_nodes: set[str] = set()
        #: ground truth of rotten replicas as ``(file, index, node)`` —
        #: what the *disks* hold, unknown to the namenode until a read or
        #: scrub detects it and files :meth:`report_bad_block`.
        self._corrupt_replicas: set[tuple[str, int, str]] = set()
        #: blocks created below the configured replication degree because
        #: too few datanodes were alive at placement time (the namenode's
        #: under-replicated-blocks gauge).
        self.under_replicated_blocks = 0
        #: blocks whose replicas all landed on one rack although live
        #: datanodes spanned several (placement degraded, e.g. every
        #: off-rack candidate already held a replica).  The rack-diversity
        #: analogue of the under-replication gauge, snapshotted into the
        #: fsimage the same way.
        self.rack_under_diverse_blocks = 0
        #: optional write-ahead journal (a NameNodeJournal attaches itself
        #: here); every namespace mutation is logged before returning.
        self.journal = None

    def _log_edit(self, op: str, *args) -> None:
        if self.journal is not None:
            self.journal.record(op, *args)

    def create_file(self, name: str, size_bytes: int) -> HdfsFile:
        """Create a file of *size_bytes*, splitting and placing its blocks."""
        if name in self.files:
            raise ValueError(f"file {name!r} already exists")
        if size_bytes < 0:
            raise ValueError("file size must be non-negative")
        blocks: list[Block] = []
        remaining = size_bytes
        index = 0
        while remaining > 0:
            size = min(self.block_size, remaining)
            replicas = self._place()
            blocks.append(Block(name, index, size, replicas))
            remaining -= size
            index += 1
        hfile = HdfsFile(name, blocks)
        self.files[name] = hfile
        self._log_edit("create_file", name, size_bytes)
        return hfile

    def delete_file(self, name: str) -> None:
        if self.files.pop(name, None) is not None:
            self._corrupt_replicas = {
                marker for marker in self._corrupt_replicas if marker[0] != name
            }
            self._log_edit("delete_file", name)

    # -- end-to-end checksums -------------------------------------------------

    def checksum_chunks(self, num_bytes: int) -> int:
        """CRC32 chunks covering *num_bytes* (``io.bytes.per.checksum``)."""
        if num_bytes < 0:
            raise ValueError("checksummed size must be non-negative")
        return -(-num_bytes // self.bytes_per_checksum)

    def corrupt_replica(self, file_name: str, index: int, node_name: str) -> bool:
        """Rot the replica of block *index* of *file_name* held by *node_name*.

        Fault injection: flips the ground truth without telling the
        namenode — detection has to come from a verified read or a scrub.
        Returns ``True`` if the replica was newly corrupted, ``False`` if
        it was already rotten.  Raises for a replica that doesn't exist.
        """
        block = self.files[file_name].blocks[index]
        if node_name not in block.replicas:
            raise ValueError(
                f"{node_name} holds no replica of {file_name!r} block {index}"
            )
        marker = (file_name, index, node_name)
        if marker in self._corrupt_replicas:
            return False
        self._corrupt_replicas.add(marker)
        return True

    def is_replica_corrupt(self, file_name: str, index: int, node_name: str) -> bool:
        return (file_name, index, node_name) in self._corrupt_replicas

    @property
    def corrupt_replica_count(self) -> int:
        """Rotten replicas still sitting undetected on disks."""
        return len(self._corrupt_replicas)

    def corrupt_replicas(self) -> frozenset[tuple[str, int, str]]:
        return frozenset(self._corrupt_replicas)

    def verify_replica(self, file_name: str, index: int, node_name: str) -> int:
        """Verify one replica's CRC32 chunks (an HDFS client read does this).

        Returns the number of chunks verified; raises
        :class:`ChecksumError` when the replica is rotten.  Verification
        is pure arithmetic riding on the data already being read, so it
        charges no simulated time.
        """
        block = self.files[file_name].blocks[index]
        chunks = self.checksum_chunks(block.size_bytes)
        if self.is_replica_corrupt(file_name, index, node_name):
            raise ChecksumError(file_name, index, node_name)
        return chunks

    def report_bad_block(
        self, file_name: str, index: int, node_name: str
    ) -> Block | None:
        """A client/scrubber reports a corrupt replica (``reportBadBlocks``).

        The namenode drops the replica from the block's replica set
        (journaled) so no future read lands on it, clearing the way for
        re-replication from a good copy.  Like Hadoop's
        ``CorruptReplicasMap`` it never invalidates the *last* replica —
        corrupt data beats no data.  Returns the updated block (the
        re-replication candidate), or ``None`` when nothing was dropped
        (file deleted, replica already gone, or it was the last one).
        """
        self._corrupt_replicas.discard((file_name, index, node_name))
        hfile = self.files.get(file_name)
        if hfile is None or index >= len(hfile.blocks):
            return None
        current = hfile.blocks[index]
        if node_name not in current.replicas:
            return None
        if len(current.replicas) <= 1:
            # Never invalidate the only replica; keep the evidence.
            self._corrupt_replicas.add((file_name, index, node_name))
            return None
        survivors = tuple(r for r in current.replicas if r != node_name)
        updated = replace(current, replicas=survivors)
        hfile.blocks[index] = updated
        self._log_edit("report_bad_block", file_name, index, node_name)
        return updated

    @property
    def _rack_aware(self) -> bool:
        """Multi-rack topology: placement must spread replicas across racks."""
        return self.topology is not None and not self.topology.is_flat

    def _place(self) -> tuple[str, ...]:
        """Pick a replica set for one new block among the live datanodes.

        When fewer live nodes remain than the configured replication
        degree the block is *under-replicated* — placed on every
        survivor and counted in :attr:`under_replicated_blocks` — rather
        than rejected; only a namespace with zero live datanodes raises
        :class:`~repro.cluster.attempts.DataLossError`.

        With a multi-rack :class:`~repro.cluster.topology.Topology` the
        placement policy is Hadoop 1.x's rack-aware default: first
        replica rotating over live nodes (the "writer-local" slot),
        second replica off the first's rack, third replica on the
        *second* replica's rack but a different node — never two
        replicas on one node.  When the policy cannot span two racks
        (every off-rack node is dead) it degrades gracefully and counts
        the block in :attr:`rack_under_diverse_blocks`.  A ``None`` or
        flat topology takes the stock round-robin path bit-identically.
        """
        live = [node.name for node in self.nodes if node.name not in self._dead_nodes]
        if not live:
            raise DataLossError(
                "namenode", 0, "no live datanodes to place blocks on"
            )
        n = len(live)
        degree = min(self.replication, n)
        if degree < self.replication:
            self.under_replicated_blocks += 1
        if not self._rack_aware:
            chosen = tuple(
                live[(self._placement_cursor + i) % n] for i in range(degree)
            )
            self._placement_cursor = (self._placement_cursor + 1) % n
            return chosen
        chosen = self._place_rack_aware(live, degree)
        self._placement_cursor = (self._placement_cursor + 1) % n
        return chosen

    def _scan_live(self, live, chosen, predicate) -> str | None:
        """First live node after the cursor not in *chosen* passing *predicate*."""
        n = len(live)
        for i in range(1, n):
            name = live[(self._placement_cursor + i) % n]
            if name not in chosen and predicate(name):
                return name
        return None

    def _place_rack_aware(self, live: list[str], degree: int) -> tuple[str, ...]:
        rack_of = self.topology.rack_of
        chosen = [live[self._placement_cursor % len(live)]]
        if degree >= 2:
            # Second replica off the first's rack (fall back to any
            # distinct node when no other rack has a live datanode).
            first_rack = rack_of(chosen[0])
            second = self._scan_live(
                live, chosen, lambda name: rack_of(name) != first_rack
            )
            if second is None:
                second = self._scan_live(live, chosen, lambda name: True)
            chosen.append(second)
        if degree >= 3:
            # Third replica on the second's rack, a different node; fall
            # back to any remaining node when that rack has no other.
            second_rack = rack_of(chosen[1])
            third = self._scan_live(
                live, chosen, lambda name: rack_of(name) == second_rack
            )
            if third is None:
                third = self._scan_live(live, chosen, lambda name: True)
            chosen.append(third)
        for _ in range(len(chosen), degree):
            chosen.append(self._scan_live(live, chosen, lambda name: True))
        # Observational gauge: a multi-replica block that could not span
        # two racks (every off-rack datanode is dead) is placed anyway
        # but counted, mirroring the namenode's under-replication gauge.
        if degree >= 2 and len({rack_of(name) for name in chosen}) < 2:
            self.rack_under_diverse_blocks += 1
        return tuple(chosen)

    # -- datanode loss and re-replication ------------------------------------

    @property
    def dead_nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._dead_nodes))

    def live_node_names(self) -> list[str]:
        return [node.name for node in self.nodes if node.name not in self._dead_nodes]

    def fail_node(self, name: str) -> tuple[list[Block], list[Block]]:
        """Declare datanode *name* dead and drop it from every replica set.

        Returns ``(under_replicated, lost)``: blocks that still have at
        least one surviving replica (candidates for re-replication) and
        blocks whose every replica lived on dead nodes (data loss).
        Idempotent for an already-dead node.
        """
        already_dead = name in self._dead_nodes
        self._dead_nodes.add(name)
        under_replicated: list[Block] = []
        lost: list[Block] = []
        if already_dead:
            return under_replicated, lost
        # Rotten replicas die with their disks.
        self._corrupt_replicas = {
            marker for marker in self._corrupt_replicas if marker[2] != name
        }
        self._log_edit("fail_node", name)
        for hfile in self.files.values():
            for i, block in enumerate(hfile.blocks):
                if name not in block.replicas:
                    continue
                survivors = tuple(r for r in block.replicas if r != name)
                block = replace(block, replicas=survivors)
                hfile.blocks[i] = block
                (under_replicated if survivors else lost).append(block)
        return under_replicated, lost

    def re_replicate_block(self, block: Block) -> tuple[str, str] | None:
        """Restore one replica of an under-replicated *block*.

        Picks a surviving replica holder as the source and a live node not
        yet holding the block as the target (rotating like initial
        placement), records the new replica in the directory, and returns
        ``(src_name, dst_name)`` so the caller can charge the copy to the
        disk/network models.  Returns ``None`` when no replica survives or
        no eligible target exists.

        With a multi-rack topology the namenode restores *rack diversity*
        first: targets on racks not yet holding a replica are preferred
        over same-rack ones, so a block pushed onto a single rack by
        datanode deaths regains a second rack on its first repair.
        """
        current = self.files[block.file_name].blocks[block.index]
        if not current.replicas:
            return None
        candidates = [
            name
            for name in self.live_node_names()
            if name not in current.replicas
        ]
        if not candidates:
            return None
        if self._rack_aware:
            rack_of = self.topology.rack_of
            held_racks = {rack_of(name) for name in current.replicas}
            diverse = [
                name for name in candidates if rack_of(name) not in held_racks
            ]
            pool = diverse or candidates
            dst = pool[self._placement_cursor % len(pool)]
        else:
            dst = candidates[self._placement_cursor % len(candidates)]
        self._placement_cursor += 1
        src = current.replicas[0]
        self.files[block.file_name].blocks[block.index] = replace(
            current, replicas=current.replicas + (dst,)
        )
        self._log_edit("re_replicate_block", block.file_name, block.index)
        return src, dst

    def nodes_with_block(self, block: Block) -> tuple[str, ...]:
        return block.replicas

    # -- lineage hooks (workflow recovery) ------------------------------------

    def file_exists(self, name: str) -> bool:
        return name in self.files

    def lost_blocks(self, name: str) -> list[int]:
        """Indices of *name*'s blocks with zero surviving replicas.

        The workflow orchestrator's lineage check: a consumer stage may
        read its input only when this is empty; otherwise the producer
        subgraph must be re-executed.  A file missing from the namespace
        entirely reads as all-lost (empty files have no blocks to lose,
        so a zero-block file is intact).
        """
        hfile = self.files.get(name)
        if hfile is None:
            return [-1]
        return [
            block.index for block in hfile.blocks if not block.replicas
        ]

    def destroy_replicas(self, name: str) -> int:
        """Fault injection: drop every replica of every block of *name*.

        Models the pathological loss window the lineage machinery exists
        for — all replica holders of a completed stage's output die
        before any consumer reads it.  The namespace entry survives (the
        namenode still lists the file); the data is gone.  Returns the
        number of blocks destroyed.
        """
        hfile = self.files.get(name)
        if hfile is None:
            raise KeyError(f"no such HDFS file: {name!r}")
        self._corrupt_replicas = {
            marker for marker in self._corrupt_replicas if marker[0] != name
        }
        destroyed = 0
        for i, block in enumerate(hfile.blocks):
            if block.replicas:
                hfile.blocks[i] = replace(block, replicas=())
                destroyed += 1
        self._log_edit("destroy_replicas", name)
        return destroyed

    def blocks_of(self, name: str) -> list[Block]:
        try:
            return self.files[name].blocks
        except KeyError:
            raise KeyError(f"no such HDFS file: {name!r}") from None

    def blocks_on_node(self, node_name: str) -> list[Block]:
        return [
            block
            for hfile in self.files.values()
            for block in hfile.blocks
            if node_name in block.replicas
        ]

    def total_stored_bytes(self) -> int:
        """Raw bytes stored including replication."""
        return sum(
            block.size_bytes * len(block.replicas)
            for hfile in self.files.values()
            for block in hfile.blocks
        )


class DataBlockScanner:
    """The datanode's background scrubber (Hadoop's ``DataBlockScanner``).

    Reads every block replica stored on a datanode and verifies its CRC32
    chunks, so bit-rot on replicas nobody happens to read is still found.
    The scan's reads are charged to the node's :class:`Disk` (FIFO, like
    any other I/O) and counted as scrub traffic in the node's ``/proc``.
    The scanner only *detects*: it returns the rotten replicas found, and
    the namenode side (the caller) reports and re-replicates them.
    """

    def __init__(self, hdfs: Hdfs) -> None:
        self.hdfs = hdfs

    def scan_node(self, node: Node, at: float) -> tuple[float, int, list[Block]]:
        """Scrub every replica on *node* starting at time *at*.

        Returns ``(finish_time, bytes_scanned, corrupt_blocks)``.
        """
        t = at
        scanned = 0
        corrupt: list[Block] = []
        for block in self.hdfs.blocks_on_node(node.name):
            t = node.disk.read(t, block.size_bytes)
            scanned += block.size_bytes
            node.procfs.record_scrub(block.size_bytes)
            try:
                chunks = self.hdfs.verify_replica(
                    block.file_name, block.index, node.name
                )
            except ChecksumError:
                node.procfs.record_checksum(
                    self.hdfs.checksum_chunks(block.size_bytes)
                )
                node.procfs.record_checksum_failure()
                corrupt.append(block)
            else:
                node.procfs.record_checksum(chunks)
        return t, scanned, corrupt
