"""Figure 2: speedup of the eleven workloads on 1/4/8 slave nodes.

The paper runs each workload on a Hadoop cluster with 1, 4 and 8 slaves
(same per-node configuration as Section III) and normalises run time to
the one-slave case; at 8 slaves the speedups range 3.3–8.2 (Naive Bayes
6.6), demonstrating that data-analysis workloads are diverse in
performance behaviour.

We repeat the experiment on the cluster model.  The MB-scale inputs come
with proportionally scaled per-slave slot counts (24 map slots in the
paper for multi-GB waves → default 4 here) so the waves-per-job ratio —
what actually shapes the scaling curve — matches the paper's setup; the
block size shrinks with the inputs for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import make_cluster
from repro.workloads.base import DataAnalysisWorkload, all_workloads


@dataclass
class SpeedupResult:
    """Speedup curves for one workload set."""

    slave_counts: list[int]
    durations: dict[str, dict[int, float]] = field(default_factory=dict)

    def speedup(self, name: str, slaves: int) -> float:
        base = self.durations[name][self.slave_counts[0]]
        return base / self.durations[name][slaves]

    def series(self, name: str) -> list[float]:
        return [self.speedup(name, n) for n in self.slave_counts]

    def max_spread(self) -> tuple[float, float]:
        """(min, max) speedup at the largest cluster size."""
        largest = self.slave_counts[-1]
        values = [self.speedup(name, largest) for name in self.durations]
        return min(values), max(values)


def speedup_study(
    workloads: list[DataAnalysisWorkload] | None = None,
    slave_counts: tuple[int, ...] = (1, 4, 8),
    scale: float = 1.0,
    map_slots: int = 4,
    reduce_slots: int = 2,
    block_size: int = 2 * 1024,
    cpu_speed: float = 0.01,
) -> SpeedupResult:
    """Run Figure 2: every workload on each cluster size.

    Each run gets a fresh cluster (the paper reinstalls between
    configurations) and the same input scale, so durations are directly
    comparable across sizes.

    ``cpu_speed`` and ``block_size`` keep the MB-scale runs in the same
    regime as the paper's GB-scale ones: tasks must be numerous enough to
    form several scheduling waves on the largest cluster (hence the small
    blocks) and long enough that per-task compute — not fixed seek and
    connection latencies — dominates (hence the slow nodes; at the paper's
    scale a map task processes a 64 MB split for tens of seconds).
    """
    if not slave_counts or sorted(slave_counts) != list(slave_counts):
        raise ValueError("slave_counts must be ascending and non-empty")
    workloads = workloads if workloads is not None else all_workloads()
    result = SpeedupResult(slave_counts=list(slave_counts))
    for wl in workloads:
        timings: dict[int, float] = {}
        for slaves in slave_counts:
            cluster = make_cluster(
                slaves,
                map_slots=map_slots,
                reduce_slots=reduce_slots,
                block_size=block_size,
                cpu_speed=cpu_speed,
            )
            run = wl.run(scale=scale, cluster=cluster)
            timings[slaves] = run.duration_s
        result.durations[wl.info.name] = timings
    return result
