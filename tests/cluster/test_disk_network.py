"""Tests for disk and network device models."""

import pytest

from repro.cluster.disk import Disk, WRITE_OP_BYTES
from repro.cluster.network import Network, Nic
from repro.perf.procfs import ProcFs


class TestDisk:
    def make(self, **kw):
        return Disk(ProcFs(), **kw)

    def test_read_duration_matches_bandwidth(self):
        d = self.make(read_bw=100e6, seek_s=0.0)
        assert d.read(0.0, 100_000_000) == pytest.approx(1.0)

    def test_write_duration_matches_bandwidth(self):
        d = self.make(write_bw=50e6, seek_s=0.0)
        assert d.write(0.0, 50_000_000) == pytest.approx(1.0)

    def test_seek_added(self):
        d = self.make(read_bw=100e6, seek_s=0.01)
        assert d.read(0.0, 0) == pytest.approx(0.01)

    def test_requests_serialise(self):
        d = self.make(read_bw=100e6, seek_s=0.0)
        first = d.read(0.0, 100_000_000)
        second = d.read(0.0, 100_000_000)
        assert second == pytest.approx(first + 1.0)

    def test_idle_disk_starts_at_now(self):
        d = self.make(read_bw=100e6, seek_s=0.0)
        assert d.read(5.0, 100_000_000) == pytest.approx(6.0)

    def test_write_ops_accounted_in_procfs(self):
        d = self.make()
        d.write(0.0, 3 * WRITE_OP_BYTES)
        assert d.procfs.writes_completed == 3

    def test_sub_buffer_writes_merge(self):
        # Block-layer-style merging: small writes coalesce into one op.
        d = self.make()
        d.write(0.0, WRITE_OP_BYTES // 2)
        assert d.procfs.writes_completed == 0
        d.write(0.0, WRITE_OP_BYTES // 2)
        assert d.procfs.writes_completed == 1

    def test_partial_write_op_carries_over(self):
        d = self.make()
        d.write(0.0, WRITE_OP_BYTES + 1)
        assert d.procfs.writes_completed == 1
        d.write(0.0, WRITE_OP_BYTES - 1)
        assert d.procfs.writes_completed == 2

    def test_read_bytes_accounted(self):
        d = self.make()
        d.read(0.0, 1024)
        assert d.procfs.reads_completed == 1
        assert d.procfs.sectors_read == 2

    def test_rejects_negative_io(self):
        d = self.make()
        with pytest.raises(ValueError):
            d.read(0.0, -1)
        with pytest.raises(ValueError):
            d.write(0.0, -1)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            Disk(ProcFs(), read_bw=0)
        with pytest.raises(ValueError):
            Disk(ProcFs(), seek_s=-1)

    def test_reset(self):
        d = self.make()
        d.read(0.0, 1 << 20)
        d.reset()
        assert d.busy_until == 0.0


class TestNetwork:
    def make_pair(self, bw=125e6):
        a, b = Nic(ProcFs("a"), bw), Nic(ProcFs("b"), bw)
        return a, b, Network(latency_s=0.0)

    def test_transfer_time_matches_bandwidth(self):
        a, b, net = self.make_pair(bw=125e6)
        assert net.transfer(0.0, a, b, 125_000_000) == pytest.approx(1.0)

    def test_latency_added(self):
        a, b, _ = self.make_pair()
        net = Network(latency_s=0.5)
        assert net.transfer(0.0, a, b, 0) == pytest.approx(0.5)

    def test_slowest_nic_limits(self):
        a = Nic(ProcFs("a"), 125e6)
        b = Nic(ProcFs("b"), 12.5e6)
        net = Network(latency_s=0.0)
        assert net.transfer(0.0, a, b, 12_500_000) == pytest.approx(1.0)

    def test_sender_transfers_serialise(self):
        a, b, net = self.make_pair()
        c = Nic(ProcFs("c"), 125e6)
        t1 = net.transfer(0.0, a, b, 125_000_000)
        t2 = net.transfer(0.0, a, c, 125_000_000)
        assert t2 == pytest.approx(t1 + 1.0)

    def test_distinct_pairs_parallel(self):
        a, b, net = self.make_pair()
        c, d = Nic(ProcFs("c"), 125e6), Nic(ProcFs("d"), 125e6)
        t1 = net.transfer(0.0, a, b, 125_000_000)
        t2 = net.transfer(0.0, c, d, 125_000_000)
        assert t1 == pytest.approx(t2)

    def test_rejects_self_transfer(self):
        a, _, net = self.make_pair()
        with pytest.raises(ValueError):
            net.transfer(0.0, a, a, 10)

    def test_procfs_accounting(self):
        a, b, net = self.make_pair()
        net.transfer(0.0, a, b, 1000)
        assert a.procfs.net_tx_bytes == 1000
        assert b.procfs.net_rx_bytes == 1000

    def test_traffic_counters(self):
        a, b, net = self.make_pair()
        net.transfer(0.0, a, b, 1000)
        net.transfer(0.0, a, b, 500)
        assert net.transfers == 2
        assert net.bytes_moved == 1500


class TestOversubscribedFabric:
    def make_four(self, fabric):
        nics = [Nic(ProcFs(f"n{i}"), 125e6) for i in range(4)]
        return nics, Network(latency_s=0.0, fabric_bandwidth=fabric)

    def test_fabric_serialises_disjoint_pairs(self):
        # Non-blocking: two disjoint transfers run in parallel.
        nics, blocking = self.make_four(fabric=None)
        t1 = blocking.transfer(0.0, nics[0], nics[1], 125_000_000)
        t2 = blocking.transfer(0.0, nics[2], nics[3], 125_000_000)
        assert t1 == pytest.approx(t2)
        # Oversubscribed to one port's worth: they serialise.
        nics, fabric = self.make_four(fabric=125e6)
        t1 = fabric.transfer(0.0, nics[0], nics[1], 125_000_000)
        t2 = fabric.transfer(0.0, nics[2], nics[3], 125_000_000)
        assert t2 == pytest.approx(t1 + 1.0)

    def test_fabric_slower_than_nic_limits_single_transfer(self):
        nics, net = self.make_four(fabric=12.5e6)
        done = net.transfer(0.0, nics[0], nics[1], 12_500_000)
        assert done == pytest.approx(1.0)

    def test_fast_fabric_behaves_like_non_blocking(self):
        nics, net = self.make_four(fabric=1e12)
        t1 = net.transfer(0.0, nics[0], nics[1], 125_000_000)
        assert t1 == pytest.approx(1.0, rel=1e-3)

    def test_rejects_nonpositive_fabric(self):
        with pytest.raises(ValueError):
            Network(fabric_bandwidth=0)
