"""HDFS block placement model.

Files are split into fixed-size blocks, each replicated on ``replication``
distinct slave nodes (round-robin with a rotating offset, which is how a
balanced HDFS cluster ends up distributing a large sequentially-written
file).  The scheduler queries :meth:`Hdfs.nodes_with_block` for map-task
locality.

The namenode side of datanode loss is modelled too: :meth:`Hdfs.fail_node`
drops a dead node from every replica set (reporting which blocks became
under-replicated and which are gone entirely), and
:meth:`Hdfs.re_replicate_block` picks the source/target pair the namenode
would use to restore the replication degree — the cluster charges the
actual disk reads and network transfer for that background copy traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.attempts import DataLossError
from repro.cluster.node import Node


@dataclass(frozen=True)
class Block:
    """One HDFS block."""

    file_name: str
    index: int
    size_bytes: int
    replicas: tuple[str, ...]


@dataclass
class HdfsFile:
    """A file: ordered blocks plus total size."""

    name: str
    blocks: list[Block] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return sum(b.size_bytes for b in self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)


class Hdfs:
    """Block-placement directory over the cluster's slave nodes."""

    def __init__(self, nodes: list[Node], block_size: int = 64 * 1024 * 1024, replication: int = 3):
        if not nodes:
            raise ValueError("HDFS needs at least one datanode")
        if block_size <= 0:
            raise ValueError("block size must be positive")
        if replication <= 0:
            raise ValueError("replication must be positive")
        self.nodes = list(nodes)
        self.block_size = block_size
        self.replication = min(replication, len(self.nodes))
        self.files: dict[str, HdfsFile] = {}
        self._placement_cursor = 0
        self._dead_nodes: set[str] = set()
        #: blocks created below the configured replication degree because
        #: too few datanodes were alive at placement time (the namenode's
        #: under-replicated-blocks gauge).
        self.under_replicated_blocks = 0
        #: optional write-ahead journal (a NameNodeJournal attaches itself
        #: here); every namespace mutation is logged before returning.
        self.journal = None

    def _log_edit(self, op: str, *args) -> None:
        if self.journal is not None:
            self.journal.record(op, *args)

    def create_file(self, name: str, size_bytes: int) -> HdfsFile:
        """Create a file of *size_bytes*, splitting and placing its blocks."""
        if name in self.files:
            raise ValueError(f"file {name!r} already exists")
        if size_bytes < 0:
            raise ValueError("file size must be non-negative")
        blocks: list[Block] = []
        remaining = size_bytes
        index = 0
        while remaining > 0:
            size = min(self.block_size, remaining)
            replicas = self._place()
            blocks.append(Block(name, index, size, replicas))
            remaining -= size
            index += 1
        hfile = HdfsFile(name, blocks)
        self.files[name] = hfile
        self._log_edit("create_file", name, size_bytes)
        return hfile

    def delete_file(self, name: str) -> None:
        if self.files.pop(name, None) is not None:
            self._log_edit("delete_file", name)

    def _place(self) -> tuple[str, ...]:
        """Pick a replica set for one new block among the live datanodes.

        When fewer live nodes remain than the configured replication
        degree the block is *under-replicated* — placed on every
        survivor and counted in :attr:`under_replicated_blocks` — rather
        than rejected; only a namespace with zero live datanodes raises
        :class:`~repro.cluster.attempts.DataLossError`.
        """
        live = [node.name for node in self.nodes if node.name not in self._dead_nodes]
        if not live:
            raise DataLossError(
                "namenode", 0, "no live datanodes to place blocks on"
            )
        n = len(live)
        degree = min(self.replication, n)
        if degree < self.replication:
            self.under_replicated_blocks += 1
        chosen = tuple(live[(self._placement_cursor + i) % n] for i in range(degree))
        self._placement_cursor = (self._placement_cursor + 1) % n
        return chosen

    # -- datanode loss and re-replication ------------------------------------

    @property
    def dead_nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._dead_nodes))

    def live_node_names(self) -> list[str]:
        return [node.name for node in self.nodes if node.name not in self._dead_nodes]

    def fail_node(self, name: str) -> tuple[list[Block], list[Block]]:
        """Declare datanode *name* dead and drop it from every replica set.

        Returns ``(under_replicated, lost)``: blocks that still have at
        least one surviving replica (candidates for re-replication) and
        blocks whose every replica lived on dead nodes (data loss).
        Idempotent for an already-dead node.
        """
        already_dead = name in self._dead_nodes
        self._dead_nodes.add(name)
        under_replicated: list[Block] = []
        lost: list[Block] = []
        if already_dead:
            return under_replicated, lost
        self._log_edit("fail_node", name)
        for hfile in self.files.values():
            for i, block in enumerate(hfile.blocks):
                if name not in block.replicas:
                    continue
                survivors = tuple(r for r in block.replicas if r != name)
                block = replace(block, replicas=survivors)
                hfile.blocks[i] = block
                (under_replicated if survivors else lost).append(block)
        return under_replicated, lost

    def re_replicate_block(self, block: Block) -> tuple[str, str] | None:
        """Restore one replica of an under-replicated *block*.

        Picks a surviving replica holder as the source and a live node not
        yet holding the block as the target (rotating like initial
        placement), records the new replica in the directory, and returns
        ``(src_name, dst_name)`` so the caller can charge the copy to the
        disk/network models.  Returns ``None`` when no replica survives or
        no eligible target exists.
        """
        current = self.files[block.file_name].blocks[block.index]
        if not current.replicas:
            return None
        candidates = [
            name
            for name in self.live_node_names()
            if name not in current.replicas
        ]
        if not candidates:
            return None
        dst = candidates[self._placement_cursor % len(candidates)]
        self._placement_cursor += 1
        src = current.replicas[0]
        self.files[block.file_name].blocks[block.index] = replace(
            current, replicas=current.replicas + (dst,)
        )
        self._log_edit("re_replicate_block", block.file_name, block.index)
        return src, dst

    def nodes_with_block(self, block: Block) -> tuple[str, ...]:
        return block.replicas

    def blocks_of(self, name: str) -> list[Block]:
        try:
            return self.files[name].blocks
        except KeyError:
            raise KeyError(f"no such HDFS file: {name!r}") from None

    def blocks_on_node(self, node_name: str) -> list[Block]:
        return [
            block
            for hfile in self.files.values()
            for block in hfile.blocks
            if node_name in block.replicas
        ]

    def total_stored_bytes(self) -> int:
        """Raw bytes stored including replication."""
        return sum(
            block.size_bytes * len(block.replicas)
            for hfile in self.files.values()
            for block in hfile.blocks
        )
