#!/usr/bin/env python3
"""Drive the mini data warehouse (the Hive-bench substrate) directly.

Shows the SQL-subset engine compiling each statement into MapReduce
stages — scan, reduce-side join, group-by with partial aggregation, and
the single-reducer total-order stage — and running them on a simulated
cluster, with EXPLAIN output and per-query job timelines.

Run:  python examples/hive_warehouse.py
"""

from repro.cluster import make_cluster
from repro.hive import HiveSession
from repro.workloads import datagen

QUERIES = [
    "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 200 ORDER BY pageRank DESC LIMIT 5",
    "SELECT sourceIP, SUM(adRevenue) AS revenue FROM uservisits GROUP BY sourceIP "
    "ORDER BY revenue DESC LIMIT 5",
    "SELECT searchWord, COUNT(*) AS hits FROM uservisits WHERE searchWord LIKE '%a%' "
    "GROUP BY searchWord ORDER BY hits DESC LIMIT 5",
    "SELECT uv.sourceIP, SUM(uv.adRevenue) AS revenue FROM rankings r "
    "JOIN uservisits uv ON r.pageURL = uv.destURL WHERE r.pageRank > 100 "
    "GROUP BY uv.sourceIP ORDER BY revenue DESC LIMIT 5",
]


def main() -> None:
    cluster = make_cluster(4, block_size=64 * 1024)
    session = HiveSession(cluster=cluster)
    session.create_table(
        "rankings", [("pageURL", "string"), ("pageRank", "int"), ("avgDuration", "int")]
    )
    session.create_table(
        "uservisits",
        [("sourceIP", "string"), ("destURL", "string"),
         ("adRevenue", "double"), ("searchWord", "string")],
    )
    session.load_rows("rankings", datagen.generate_rankings(2000))
    session.load_rows("uservisits", datagen.generate_uservisits(8000, 2000))
    print("loaded rankings (2000 rows) and uservisits (8000 rows)\n")

    for sql in QUERIES:
        print("SQL>", sql)
        print(session.explain(sql))
        execution = session.execute(sql)
        print(f"-- {len(execution.rows)} row(s), "
              f"{len(execution.job_results)} MapReduce stage(s), "
              f"{execution.total_duration_s():.3f}s simulated")
        header = " | ".join(execution.columns)
        print("   " + header)
        for row in execution.rows[:5]:
            print("   " + " | ".join(
                f"{v:.4f}" if isinstance(v, float) else str(v) for v in row
            ))
        print()


if __name__ == "__main__":
    main()
