"""Instance recording: schema validation and exact JSON round-trips."""

import json

import pytest

from repro.cluster.scheduler import FairScheduler
from repro.cluster.tenancy import (
    TraceJob,
    WorkloadTrace,
    default_pools,
    generate_trace,
    run_mix,
)
from repro.recipes import (
    INSTANCE_SCHEMA_VERSION,
    Instance,
    InstanceJob,
    InstanceSchemaError,
    hive_plan_fingerprints,
    instance_from_trace,
    record_instance,
)

SMALL = dict(num_slaves=2, map_slots=4, reduce_slots=2, block_size=64 * 1024)


def small_mix(seed: int = 3, num_jobs: int = 6):
    trace = generate_trace(seed=seed, num_jobs=num_jobs, arrival_rate_per_s=2.0)
    return run_mix(trace, FairScheduler(pools=default_pools(trace)), **SMALL)


def hand_trace() -> WorkloadTrace:
    return WorkloadTrace(
        (
            TraceJob(0, "Hive-bench", 0.05, 0.0, "ada", "interactive", "small"),
            TraceJob(1, "Grep", 0.05, 0.2, "bo", "interactive", "small"),
            TraceJob(2, "Hive-bench", 0.05, 0.4, "ada", "interactive", "small"),
        ),
        seed=0,
        arrival_rate_per_s=0.0,
    )


class TestRecordInstance:
    def test_records_every_trace_job_with_schedule(self):
        mix = small_mix()
        instance = record_instance(mix, name="t")
        assert len(instance.jobs) == len(mix.trace.jobs)
        assert instance.scheduler == mix.scheduler
        assert instance.seed == mix.trace.seed
        for job, report in zip(instance.jobs, mix.reports):
            assert job.workload == report.trace_job.workload
            assert job.submit_s == report.trace_job.arrival_s
            assert job.start_s == report.first_launch_s
            assert job.finish_s == report.finished_s
            assert job.ideal_s == report.ideal_s
            assert job.job_ids == report.job_ids

    def test_hive_jobs_carry_plan_fingerprints(self):
        instance = record_instance(small_mix(), name="t")
        for job in instance.jobs:
            if job.workload == "Hive-bench":
                assert len(job.plan_fingerprints) == 4
            else:
                assert job.plan_fingerprints == ()

    def test_fingerprints_are_a_pure_function_of_the_workload(self):
        assert hive_plan_fingerprints("Hive-bench") == hive_plan_fingerprints(
            "Hive-bench"
        )
        assert hive_plan_fingerprints("Grep") == ()

    def test_submit_only_instance_from_trace(self):
        trace = hand_trace()
        instance = instance_from_trace(trace, name="bare")
        assert len(instance.jobs) == 3
        assert all(job.start_s is None for job in instance.jobs)
        assert all(job.finish_s is None for job in instance.jobs)
        assert instance.jobs[0].plan_fingerprints  # Hive job

    def test_to_trace_replays_the_submissions(self):
        trace = hand_trace()
        back = instance_from_trace(trace).to_trace()
        assert back.to_dict() == trace.to_dict()


class TestRoundTrip:
    def test_recorded_instance_round_trips_exactly(self):
        instance = record_instance(small_mix(), name="rt")
        assert Instance.from_json(instance.to_json()) == instance

    def test_submit_only_instance_round_trips_exactly(self):
        instance = instance_from_trace(hand_trace(), name="rt")
        assert Instance.from_json(instance.to_json()) == instance

    def test_json_is_deterministic(self):
        a = record_instance(small_mix(), name="rt").to_json()
        b = record_instance(small_mix(), name="rt").to_json()
        assert a == b

    def test_users_and_pools_are_sorted_views(self):
        instance = instance_from_trace(hand_trace())
        assert instance.users() == ["ada", "bo"]
        assert instance.pools() == ["interactive"]


class TestValidation:
    def base(self) -> dict:
        return json.loads(instance_from_trace(hand_trace(), name="v").to_json())

    def test_not_json_is_a_schema_error(self):
        with pytest.raises(InstanceSchemaError, match="not valid JSON"):
            Instance.from_json("{nope")

    def test_wrong_schema_version_is_rejected(self):
        data = self.base()
        data["schema_version"] = "0.0"
        with pytest.raises(InstanceSchemaError, match="unsupported"):
            Instance.from_dict(data)
        assert INSTANCE_SCHEMA_VERSION == "1.0"

    def test_missing_job_field_is_rejected(self):
        data = self.base()
        del data["jobs"][0]["scale"]
        with pytest.raises(InstanceSchemaError, match="missing field"):
            Instance.from_dict(data)

    def test_unknown_job_field_is_rejected(self):
        data = self.base()
        data["jobs"][0]["surprise"] = 1
        with pytest.raises(InstanceSchemaError, match="unknown field"):
            Instance.from_dict(data)

    def test_bool_is_not_a_number(self):
        data = self.base()
        data["jobs"][0]["scale"] = True
        with pytest.raises(InstanceSchemaError, match="must be a number"):
            Instance.from_dict(data)

    def test_unsorted_submits_are_rejected(self):
        data = self.base()
        data["jobs"][0]["submit_s"] = 9.0
        with pytest.raises(InstanceSchemaError, match="sorted"):
            Instance.from_dict(data)

    def test_start_before_submit_is_rejected(self):
        with pytest.raises(InstanceSchemaError, match="start before"):
            InstanceJob(
                index=0, workload="Grep", scale=0.05, user="u", pool="p",
                size_class="small", submit_s=1.0, start_s=0.5, finish_s=2.0,
            )

    def test_finish_before_start_is_rejected(self):
        with pytest.raises(InstanceSchemaError, match="finish before"):
            InstanceJob(
                index=0, workload="Grep", scale=0.05, user="u", pool="p",
                size_class="small", submit_s=0.0, start_s=1.0, finish_s=0.5,
            )

    def test_start_without_finish_is_rejected(self):
        with pytest.raises(InstanceSchemaError, match="together"):
            InstanceJob(
                index=0, workload="Grep", scale=0.05, user="u", pool="p",
                size_class="small", submit_s=0.0, start_s=1.0,
            )

    def test_empty_instance_is_rejected(self):
        with pytest.raises(InstanceSchemaError, match="at least one job"):
            Instance(name="e", seed=0, arrival_rate_per_s=1.0, jobs=())

    def test_nonpositive_scale_is_rejected(self):
        with pytest.raises(InstanceSchemaError, match="scale"):
            InstanceJob(
                index=0, workload="Grep", scale=0.0, user="u", pool="p",
                size_class="small", submit_s=0.0,
            )
