"""Tests for the perf-style measurement layer."""

import pytest

from repro.perf import EVENT_CATALOG, PerfSession, ProcFs, lookup_event
from repro.uarch.config import scaled_machine
from repro.uarch.trace import TraceSpec


class TestEventCatalog:
    def test_paper_scale_event_count(self):
        # "We collect about 20 events" (§III-D).
        assert len(EVENT_CATALOG) >= 20

    def test_core_events_present(self):
        for name in (
            "cycles",
            "instructions",
            "branch-misses",
            "L1-icache-load-misses",
            "l2_rqsts.miss",
            "llc.misses",
            "itlb_misses.walk_completed",
            "dtlb_misses.walk_completed",
            "resource_stalls.rs_full",
            "resource_stalls.rob_full",
            "rat_stalls.any",
        ):
            assert name in EVENT_CATALOG

    def test_event_codes_formatted(self):
        event = lookup_event("l2_rqsts.miss")
        assert event.code == "raa24"

    def test_lookup_unknown_event(self):
        with pytest.raises(KeyError):
            lookup_event("cpu_clk_unhalted.fantasy")

    def test_descriptions_nonempty(self):
        assert all(e.description for e in EVENT_CATALOG.values())


class TestPerfSession:
    MACHINE = scaled_machine(8)

    def test_measure_reads_all_events(self):
        session = PerfSession(machine=self.MACHINE)
        reading = session.measure(TraceSpec("t", 20_000))
        assert set(reading.counts) >= set(EVENT_CATALOG)
        assert reading.counts["instructions"] > 0
        assert reading.counts["cycles"] > 0

    def test_selected_events_only(self):
        session = PerfSession(events=["cycles", "branches"], machine=self.MACHINE)
        reading = session.measure(TraceSpec("t", 10_000))
        assert "cycles" in reading.counts and "branches" in reading.counts
        assert "l2_rqsts.miss" not in reading.counts
        # instructions always included for rate computation
        assert "instructions" in reading.counts

    def test_per_kilo_instructions(self):
        session = PerfSession(machine=self.MACHINE)
        reading = session.measure(TraceSpec("t", 20_000))
        rate = reading.per_kilo_instructions("l2_rqsts.miss")
        assert rate == pytest.approx(
            1000 * reading["l2_rqsts.miss"] / reading["instructions"]
        )

    def test_ratio(self):
        session = PerfSession(machine=self.MACHINE)
        reading = session.measure(TraceSpec("t", 20_000))
        ipc = reading.ratio("instructions", "cycles")
        assert 0 < ipc <= 4.0

    def test_consistency_with_result(self):
        session = PerfSession(machine=self.MACHINE)
        reading = session.measure(TraceSpec("t", 20_000))
        assert reading.counts["cycles"] == reading.result.cycles
        assert reading.counts["instructions"] == reading.result.instructions

    def test_unknown_event_rejected_at_construction(self):
        with pytest.raises(KeyError):
            PerfSession(events=["bogus-event"])


class TestProcFs:
    def test_disk_write_recording(self):
        p = ProcFs()
        p.record_disk_write(1024)
        assert p.writes_completed == 1
        assert p.sectors_written == 2

    def test_rate_from_samples(self):
        p = ProcFs()
        p.sample(0.0)
        for _ in range(10):
            p.record_disk_write(512)
        p.sample(2.0)
        assert p.disk_writes_per_second() == pytest.approx(5.0)

    def test_rate_needs_two_samples(self):
        p = ProcFs()
        p.sample(0.0)
        with pytest.raises(ValueError):
            p.disk_writes_per_second()

    def test_zero_elapsed_rate(self):
        p = ProcFs()
        p.sample(1.0)
        p.sample(1.0)
        assert p.disk_writes_per_second() == 0.0

    def test_rejects_negative_io(self):
        p = ProcFs()
        with pytest.raises(ValueError):
            p.record_disk_write(-1)
        with pytest.raises(ValueError):
            p.record_disk_read(-5)

    def test_bytes_written(self):
        p = ProcFs()
        p.record_disk_write(1000)
        assert p.bytes_written() == 1024  # rounded up to sectors

    def test_render_diskstats_shape(self):
        p = ProcFs()
        p.record_disk_write(512)
        p.record_disk_read(512)
        line = p.render_diskstats()
        assert "sda" in line
        fields = line.split()
        assert fields[3] == "1"  # reads completed

    def test_resilience_counters(self):
        p = ProcFs(node_name="slave1")
        p.record_task_failure()
        p.record_task_failure()
        p.record_task_kill()
        p.record_speculative()
        p.record_fetch_failure()
        assert p.tasks_failed == 2
        assert p.tasks_killed == 1
        assert p.tasks_speculative == 1
        assert p.fetch_failures == 1
        line = p.render_resilience()
        assert line.startswith("slave1:")
        assert "tasks_failed 2" in line
        assert "tasks_killed 1" in line
        assert "fetch_failures 1" in line

    def test_render_netdev_shape(self):
        p = ProcFs()
        p.record_net(rx_bytes=100, tx_bytes=50)
        line = p.render_netdev()
        assert line.strip().startswith("eth0:")
        assert " 100 " in line and " 50 " in line
