"""Tests for the extension workloads (TF-IDF, connected components)."""

import collections
import math

import pytest

from repro.cluster import make_cluster
from repro.core.characterize import characterize
from repro.core.suite import SuiteEntry
from repro.workloads import WORKLOAD_NAMES, datagen
from repro.workloads.extra import ConnectedComponentsWorkload, TfIdfWorkload


class TestTfIdf:
    def test_matches_pure_python_reference(self):
        wl = TfIdfWorkload()
        run = wl.run(scale=0.2)
        docs = datagen.generate_documents(int(600 * 0.2), seed=71)
        n = len(docs)
        tf = collections.Counter()
        df_sets: dict[str, set] = collections.defaultdict(set)
        for doc_id, text in docs:
            for word in text.split():
                tf[(doc_id, word)] += 1
                df_sets[word].add(doc_id)
        expected = {
            (doc, word): count * math.log(n / len(df_sets[word]))
            for (doc, word), count in tf.items()
        }
        assert set(run.output) == set(expected)
        for key in list(expected)[:200]:
            assert run.output[key] == pytest.approx(expected[key])

    def test_three_jobs(self):
        run = TfIdfWorkload().run(scale=0.1)
        assert len(run.job_results) == 3

    def test_stopwords_score_lowest(self):
        """Zipf head words appear everywhere → near-zero idf."""
        run = TfIdfWorkload().run(scale=0.3)
        by_word: dict[str, list[float]] = collections.defaultdict(list)
        for (_doc, word), score in run.output.items():
            by_word[word].append(score)
        docs = datagen.generate_documents(int(600 * 0.3), seed=71)
        counts = collections.Counter(w for _, t in docs for w in t.split())
        most_common = counts.most_common(1)[0][0]
        rare = min(counts, key=counts.get)
        assert max(by_word[most_common]) < max(by_word[rare]) * 5

    def test_cluster_run(self):
        run = TfIdfWorkload().run(scale=0.1, cluster=make_cluster(2, block_size=8192))
        assert run.duration_s > 0
        assert len(run.timelines) == 3


class TestConnectedComponents:
    def test_matches_networkx(self):
        import networkx as nx

        wl = ConnectedComponentsWorkload()
        run = wl.run(scale=0.3)
        graph = wl._make_undirected_graph(int(1200 * 0.3))
        g = nx.Graph()
        g.add_nodes_from(node for node, _ in graph)
        for node, neighbors in graph:
            g.add_edges_from((node, t) for t in neighbors)
        expected_components = list(nx.connected_components(g))
        assert run.details["num_components"] == len(expected_components)
        # Every expected component must carry exactly one label.
        labels = run.output
        for component in expected_components:
            assert len({labels[node] for node in component}) == 1

    def test_labels_are_component_minima(self):
        wl = ConnectedComponentsWorkload()
        run = wl.run(scale=0.2)
        groups: dict[int, list[int]] = collections.defaultdict(list)
        for node, label in run.output.items():
            groups[label].append(node)
        for label, nodes in groups.items():
            assert label == min(nodes)

    def test_converges_before_cap(self):
        run = ConnectedComponentsWorkload().run(scale=0.2)
        assert run.details["iterations"] < ConnectedComponentsWorkload.MAX_ITERATIONS


class TestExtensionIntegration:
    def test_not_in_table_one_registry(self):
        assert "TF-IDF" not in WORKLOAD_NAMES
        assert "ConnectedComponents" not in WORKLOAD_NAMES

    @pytest.mark.parametrize("cls", [TfIdfWorkload, ConnectedComponentsWorkload])
    def test_characterizable_next_to_the_suite(self, cls):
        wl = cls()
        entry = SuiteEntry(name=wl.info.name, group="data-analysis", impl=wl)
        result = characterize(entry, instructions=30_000)
        assert 0 < result.metrics.ipc < 2.0
        assert result.metrics.kernel_instruction_fraction < 0.1
        assert sum(result.metrics.stall_breakdown.values()) == pytest.approx(1.0)
