"""Tests for back-end resource trackers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.backend import BufferTracker, ExecutionModel, RingTracker
from repro.uarch.isa import OpClass


class TestBufferTracker:
    def test_free_buffer_admits_immediately(self):
        b = BufferTracker(2)
        assert b.earliest_slot(10) == 10

    def test_full_buffer_waits_for_release(self):
        b = BufferTracker(2)
        b.occupy(20)
        b.occupy(30)
        assert b.earliest_slot(10) == 20

    def test_released_entries_freed(self):
        b = BufferTracker(1)
        b.occupy(5)
        assert b.earliest_slot(6) == 6

    def test_entries_releasing_at_now_are_reusable(self):
        b = BufferTracker(1)
        b.occupy(5)
        assert b.earliest_slot(5) == 5

    def test_occupancy(self):
        b = BufferTracker(4)
        b.occupy(100)
        b.occupy(200)
        assert b.occupancy == 2

    def test_clear(self):
        b = BufferTracker(1)
        b.occupy(100)
        b.clear()
        assert b.earliest_slot(0) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BufferTracker(0)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_earliest_slot_monotone_with_capacity(self, releases):
        """A bigger buffer never admits later than a smaller one."""
        small, big = BufferTracker(2), BufferTracker(8)
        t_small = t_big = 0
        for r in releases:
            s = small.earliest_slot(t_small)
            b = big.earliest_slot(t_big)
            assert b <= s
            small.occupy(s + r)
            big.occupy(b + r)
            t_small, t_big = s, b


class TestRingTracker:
    def test_admits_until_capacity(self):
        r = RingTracker(3)
        for _ in range(3):
            assert r.earliest_slot(0) == 0
            r.push_release(100)

    def test_blocks_on_oldest_entry(self):
        r = RingTracker(2)
        r.push_release(50)
        r.push_release(60)
        assert r.earliest_slot(0) == 50
        r.push_release(70)
        assert r.earliest_slot(0) == 60

    def test_fifo_reuse(self):
        r = RingTracker(2)
        r.push_release(10)
        r.push_release(20)
        assert r.earliest_slot(15) == 15  # oldest released at 10

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingTracker(0)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_never_admits_before_now(self, deltas):
        r = RingTracker(4)
        t = 0
        for d in deltas:
            slot = r.earliest_slot(t)
            assert slot >= t
            r.push_release(slot + d)
            t = slot


class TestExecutionModel:
    def test_default_latencies(self):
        ex = ExecutionModel()
        assert ex.latency(OpClass.ALU) == 1
        assert ex.latency(OpClass.DIV) > ex.latency(OpClass.MUL)
        assert ex.latency(OpClass.FP) == 4

    def test_override(self):
        ex = ExecutionModel({OpClass.FP: 9})
        assert ex.latency(OpClass.FP) == 9
        assert ex.latency(OpClass.ALU) == 1
