"""Trace-driven micro-architecture simulator.

This package models a modern superscalar out-of-order core in the style of
the Intel Xeon E5645 (Westmere) used by the paper: an in-order front end
(L1 instruction cache, instruction TLB, branch predictor, decoder), a
register allocation table (RAT), and an out-of-order back end (reservation
station, re-order buffer, load/store buffers, execution ports) on top of a
three-level cache hierarchy with data TLBs and a page walker.

The simulator consumes abstract micro-op streams (:mod:`repro.uarch.trace`)
and produces the hardware performance-counter readings the paper collects
with ``perf``: cycles, instructions, cache/TLB miss counters, branch
mispredictions, and the six pipeline-stall categories of Figure 6.
"""

from repro.uarch.isa import MicroOp, OpClass
from repro.uarch.config import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    TlbConfig,
    XEON_E5645,
    hugepage_machine,
    scaled_machine,
    virtualized_machine,
)
from repro.uarch.caches import Cache, CacheHierarchy
from repro.uarch.tlb import Tlb, TlbHierarchy, PageWalker
from repro.uarch.branch import (
    BimodalPredictor,
    BranchTargetBuffer,
    BranchUnit,
    GSharePredictor,
    TournamentPredictor,
    make_direction_predictor,
)
from repro.uarch.trace import (
    MemoryRegion,
    SyntheticTrace,
    TraceSpec,
    TraceStats,
)
from repro.uarch.pipeline import Core, SimulationResult, simulate
from repro.uarch.multicore import CoLocationResult, MultiCoreSystem

__all__ = [
    "MicroOp",
    "OpClass",
    "CacheConfig",
    "CoreConfig",
    "MachineConfig",
    "TlbConfig",
    "XEON_E5645",
    "hugepage_machine",
    "scaled_machine",
    "virtualized_machine",
    "Cache",
    "CacheHierarchy",
    "Tlb",
    "TlbHierarchy",
    "PageWalker",
    "BimodalPredictor",
    "BranchTargetBuffer",
    "BranchUnit",
    "GSharePredictor",
    "TournamentPredictor",
    "make_direction_predictor",
    "MemoryRegion",
    "SyntheticTrace",
    "TraceSpec",
    "TraceStats",
    "Core",
    "SimulationResult",
    "simulate",
    "CoLocationResult",
    "MultiCoreSystem",
]
