"""DCBench-style workload characterization framework — the paper's
primary contribution, as a reusable tool.

* :mod:`repro.core.characterize` — run one workload's instruction stream
  through the simulated core and derive the paper's metrics;
* :mod:`repro.core.metrics` — the metric set of Figures 3–12;
* :mod:`repro.core.suite` — the DCBench suite: the eleven data-analysis
  workloads plus the comparison suites, in the paper's figure order;
* :mod:`repro.core.report` — text renderings of every table and figure.

Quickstart::

    from repro.core import DCBench, characterize
    result = characterize(DCBench.default().entry("WordCount"))
    print(result.metrics.ipc)
"""

from repro.core.metrics import Metrics, STALL_CATEGORIES
from repro.core.characterize import Characterization, characterize
from repro.core.suite import DCBench, SuiteEntry, FIGURE_ORDER
from repro.core.report import (
    render_figure_series,
    render_metric_table,
    render_stall_table,
    render_table1,
    render_table2,
    render_table3,
)

__all__ = [
    "Metrics",
    "STALL_CATEGORIES",
    "Characterization",
    "characterize",
    "DCBench",
    "SuiteEntry",
    "FIGURE_ORDER",
    "render_figure_series",
    "render_metric_table",
    "render_stall_table",
    "render_table1",
    "render_table2",
    "render_table3",
]
