"""Figure 10: the ratio of L3 hits over L2 misses (Equation 1).

Paper shape: the LLC captures most L2 misses for both the data-analysis
(85.5 % average) and service (94.9 % average) workloads — "modern
processor's LLC is large enough" — while HPCC programs vary and the
streaming/random ones barely benefit.
"""

import pytest

from conftest import run_once

from repro.core.report import render_figure_series, render_metric_table


def test_fig10(benchmark, suite_chars, chars_by_name, da_chars, service_chars, hpcc_chars):
    series = run_once(benchmark, lambda: render_figure_series(10, suite_chars))
    print()
    print(render_metric_table(10, suite_chars))

    da_avg = series["avg"]
    svc_avg = sum(
        c.metrics.l3_hit_ratio_of_l2_misses for c in service_chars
    ) / len(service_chars)
    # Paper: 85.5 % (data analysis) and 94.9 % (services).
    assert da_avg == pytest.approx(0.855, abs=0.12)
    assert svc_avg == pytest.approx(0.949, abs=0.12)
    # HPCC's average ratio is lower than either (paper §IV-D).
    hpcc_avg = sum(c.metrics.l3_hit_ratio_of_l2_misses for c in hpcc_chars) / len(hpcc_chars)
    assert hpcc_avg < da_avg
    assert hpcc_avg < svc_avg
    # RandomAccess gets almost nothing from the LLC.
    assert chars_by_name["HPCC-RandomAccess"].metrics.l3_hit_ratio_of_l2_misses < 0.3
