"""The DCBench suite: the 27 characterized workloads in figure order.

The paper's figures list the eleven data-analysis workloads (Naive Bayes
leftmost, "since Naive Bayes is also included into our eleven workloads"),
then the "avg" bar, then the five other CloudSuite benchmarks, the SPEC
CPU2006 groups, SPECweb, and the seven HPCC programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.comparisons.base import (
    COMPARISON_NAMES,
    SERVICE_WORKLOADS,
    ComparisonWorkload,
    comparison,
)
from repro.workloads.base import DataAnalysisWorkload, workload

#: x-axis order of Figures 3–12 (without the "avg" bar).
FIGURE_ORDER = [
    "Naive Bayes",
    "SVM",
    "Grep",
    "WordCount",
    "K-means",
    "Fuzzy K-means",
    "PageRank",
    "Sort",
    "Hive-bench",
    "IBCF",
    "HMM",
    *COMPARISON_NAMES,
]

#: The data-analysis block of the figures.
DATA_ANALYSIS_NAMES = FIGURE_ORDER[:11]


@dataclass
class SuiteEntry:
    """One workload in the suite: shared surface over both kinds."""

    name: str
    group: str  # "data-analysis" | "service" | "desktop" | "hpc" | "cloud"
    impl: DataAnalysisWorkload | ComparisonWorkload

    def trace_spec(self, instructions: int, seed: int | None = None):
        return self.impl.trace_spec(instructions, seed=seed)

    def uarch_profile(self) -> dict[str, Any]:
        return self.impl.uarch_profile()

    @property
    def is_data_analysis(self) -> bool:
        return self.group == "data-analysis"

    @property
    def is_service(self) -> bool:
        return self.group == "service"


def _group_of(name: str) -> str:
    if name in DATA_ANALYSIS_NAMES:
        return "data-analysis"
    if name in SERVICE_WORKLOADS:
        return "service"
    if name.startswith("HPCC"):
        return "hpc"
    if name in ("SPECFP", "SPECINT"):
        return "desktop"
    return "cloud"  # Software Testing


class DCBench:
    """The released benchmark suite (Section V), assembled programmatically."""

    def __init__(self, entries: list[SuiteEntry]):
        self.entries = entries
        self._by_name = {e.name: e for e in entries}

    @classmethod
    def default(cls) -> "DCBench":
        """All 27 workloads in figure order."""
        entries = []
        for name in FIGURE_ORDER:
            if name in DATA_ANALYSIS_NAMES:
                impl: DataAnalysisWorkload | ComparisonWorkload = workload(name)
            else:
                impl = comparison(name)
            entries.append(SuiteEntry(name=name, group=_group_of(name), impl=impl))
        return cls(entries)

    @classmethod
    def data_analysis_only(cls) -> "DCBench":
        """Just the eleven data-analysis workloads (Table I order is
        preserved inside the figure order)."""
        suite = cls.default()
        return cls([e for e in suite.entries if e.is_data_analysis])

    def entry(self, name: str) -> SuiteEntry:
        try:
            return self._by_name[name]
        except KeyError:
            known = ", ".join(self._by_name)
            raise KeyError(f"no suite entry {name!r}; known: {known}") from None

    def data_analysis(self) -> list[SuiteEntry]:
        return [e for e in self.entries if e.is_data_analysis]

    def services(self) -> list[SuiteEntry]:
        return [e for e in self.entries if e.is_service]

    def group(self, group: str) -> list[SuiteEntry]:
        return [e for e in self.entries if e.group == group]

    def names(self) -> list[str]:
        return [e.name for e in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)
