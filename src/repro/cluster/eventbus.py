"""A seeded, deterministic event bus for cluster control flow.

iDDS orchestrates multi-stage scientific workflows as transforms wired
through an event bus: every control-plane transition (submit, ready,
finished, failed, heal) is a typed event, handlers subscribe by type, and
the delivered sequence *is* the execution history.  This module is that
architecture scaled to the simulator:

* :class:`Event` — an immutable typed record ``(type, seq, priority,
  time_s, payload)``; the payload is a plain dict of JSON-ish scalars so
  an event log can be serialised, diffed and replayed.
* :class:`EventBus` — a subscriber registry plus a FIFO-per-priority
  queue.  Delivery order is a pure function of ``(priority, seq)``: lower
  priorities drain first, ties break by publication order.  No wall
  clock, no randomness — two runs that publish the same events observe
  the same delivery sequence, bit for bit.
* the **event log** — every *delivered* event is appended to
  :attr:`EventBus.log`.  :func:`replay` re-dispatches a recorded log into
  fresh handlers, which is both the debugging story ("what did the
  control plane decide, in order?") and the determinism contract the
  tests pin (same mix → same log; replayed log → same observations).

The dispatch loop of :class:`~repro.cluster.scheduler.MultiJobCluster`
and the DAG layer of :mod:`repro.cluster.workflow` both speak this bus,
which is what lets schedulers, fault injection and workflow recovery
compose without each feature re-threading the other's control flow.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = [
    "EVENT_SUBMIT",
    "EVENT_STAGE_READY",
    "EVENT_DISPATCH",
    "EVENT_ATTEMPT_FINISHED",
    "EVENT_JOB_FINISHED",
    "EVENT_JOB_FAILED",
    "EVENT_JOB_CANCELLED",
    "EVENT_STAGE_RETRY",
    "EVENT_STAGE_FAILED",
    "EVENT_HEAL",
    "EVENT_CHECKPOINT",
    "EVENT_TYPES",
    "Event",
    "EventBus",
    "replay",
]

# -- event taxonomy ------------------------------------------------------------
#
# The closed set of control-plane transitions (see docs/workflow-model.md
# for the emitter/consumer table).  A closed taxonomy is deliberate: an
# unknown event type is a bug in the publisher, not a new feature.

#: a job entered the dispatcher's bookkeeping
EVENT_SUBMIT = "submit"
#: a job's (or stage's) dependencies are satisfied; it may be dispatched
EVENT_STAGE_READY = "stage-ready"
#: run one scheduling round of the dispatch loop
EVENT_DISPATCH = "dispatch"
#: one task attempt was charged onto the simulation (map or reduce)
EVENT_ATTEMPT_FINISHED = "attempt-finished"
#: a job committed its last task; dependents may become ready
EVENT_JOB_FINISHED = "job-finished"
#: a job aborted permanently (attempts exhausted / no live nodes)
EVENT_JOB_FAILED = "job-failed"
#: a queued job was cancelled because an upstream dependency failed
EVENT_JOB_CANCELLED = "job-cancelled"
#: a failed stage is being re-executed under its retry policy
EVENT_STAGE_RETRY = "stage-retry"
#: a stage exhausted its retries; its downstream cone is cancelled
EVENT_STAGE_FAILED = "stage-failed"
#: lost stage output detected; the minimal upstream subgraph re-executes
EVENT_HEAL = "heal"
#: workflow progress was checkpointed (journal + cluster snapshot)
EVENT_CHECKPOINT = "checkpoint"

EVENT_TYPES = (
    EVENT_SUBMIT,
    EVENT_STAGE_READY,
    EVENT_DISPATCH,
    EVENT_ATTEMPT_FINISHED,
    EVENT_JOB_FINISHED,
    EVENT_JOB_FAILED,
    EVENT_JOB_CANCELLED,
    EVENT_STAGE_RETRY,
    EVENT_STAGE_FAILED,
    EVENT_HEAL,
    EVENT_CHECKPOINT,
)

_SCALARS = (str, int, float, bool, type(None))


@dataclass(frozen=True, order=True)
class Event:
    """One typed control-plane transition.

    Ordering is ``(priority, seq)`` — the bus's delivery order — so a
    heap of events drains deterministically.  ``time_s`` tags the
    simulated instant the publisher observed (informational; delivery
    order never consults it, because publishers at equal simulated time
    must still drain in publication order).
    """

    priority: int
    seq: int
    type: str = field(compare=False)
    time_s: float = field(compare=False)
    payload: dict = field(compare=False, default_factory=dict)

    def describe(self) -> tuple:
        """Hashable summary ``(type, sorted payload items)`` for log
        comparison — deliberately excludes ``seq`` so two runs' logs
        compare by *what happened in which order*, not by counter values
        (which already agree when the histories agree)."""
        return (self.type, tuple(sorted(self.payload.items())))


class EventBus:
    """Typed events, subscriber registry, FIFO-per-priority delivery.

    Handlers subscribe per event type and are invoked in subscription
    order; delivery across events follows ``(priority, seq)``.  Every
    delivered event is appended to :attr:`log`, the replayable history.
    """

    def __init__(self) -> None:
        self._handlers: dict[str, list] = {}
        self._queue: list[Event] = []
        self._seq = 0
        #: delivered events, in delivery order (the replay record)
        self.log: list[Event] = []
        #: events published so far (log length + still-queued events)
        self.published = 0

    # -- subscription ----------------------------------------------------------

    def subscribe(self, event_type: str, handler) -> None:
        """Register *handler* for *event_type* (called in subscribe order)."""
        if event_type not in EVENT_TYPES:
            raise ValueError(f"unknown event type {event_type!r}")
        if not callable(handler):
            raise TypeError("handler must be callable")
        self._handlers.setdefault(event_type, []).append(handler)

    def unsubscribe(self, event_type: str, handler) -> None:
        handlers = self._handlers.get(event_type, [])
        if handler in handlers:
            handlers.remove(handler)

    def subscribers(self, event_type: str) -> tuple:
        return tuple(self._handlers.get(event_type, ()))

    # -- publication -----------------------------------------------------------

    def publish(
        self,
        event_type: str,
        time_s: float = 0.0,
        priority: int = 0,
        **payload,
    ) -> Event:
        """Queue one event; returns it (delivery happens in :meth:`pump`).

        Payload values must be plain scalars so the log stays
        serialisable and replayable.
        """
        if event_type not in EVENT_TYPES:
            raise ValueError(f"unknown event type {event_type!r}")
        for key, value in payload.items():
            if not isinstance(value, _SCALARS):
                raise TypeError(
                    f"event payload {key}={value!r} is not a plain scalar"
                )
        event = Event(
            priority=priority,
            seq=self._seq,
            type=event_type,
            time_s=time_s,
            payload=dict(payload),
        )
        self._seq += 1
        self.published += 1
        heapq.heappush(self._queue, event)
        return event

    # -- delivery --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queue)

    def process_one(self) -> Event | None:
        """Deliver the next event (lowest ``(priority, seq)``) or ``None``."""
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        self.log.append(event)
        for handler in tuple(self._handlers.get(event.type, ())):
            handler(event)
        return event

    def pump(self, max_events: int | None = None) -> int:
        """Deliver queued events (including ones published by handlers)
        until the queue drains; returns the number delivered.

        *max_events* is a runaway guard for cyclic publishers — exceeding
        it raises rather than spinning forever.
        """
        delivered = 0
        while self._queue:
            if max_events is not None and delivered >= max_events:
                raise RuntimeError(
                    f"event bus did not quiesce within {max_events} events"
                )
            self.process_one()
            delivered += 1
        return delivered

    # -- history ---------------------------------------------------------------

    def history(self) -> list[tuple]:
        """The delivered log as comparable ``(type, payload)`` summaries."""
        return [event.describe() for event in self.log]


def replay(log: list[Event], handlers: dict[str, object]) -> list[Event]:
    """Re-dispatch a recorded *log* into fresh *handlers*, in order.

    The replayed sequence is returned; handlers observe exactly the
    transitions the original run delivered (the deterministic-replay
    test asserts a replayed log reconstructs the same per-job history a
    live run produced).  Unhandled types are delivered to no one, which
    lets a replayer subscribe to just the transitions it cares about.
    """
    replayed: list[Event] = []
    for event in log:
        handler = handlers.get(event.type)
        if handler is not None:
            handler(event)
        replayed.append(event)
    return replayed
